package packet

// Packetizer converts encoded tuples into frames. It mirrors the egress
// workflow of the southbound transport library: multiple small tuples with
// the same source/destination are multiplexed into one frame; one tuple
// larger than the payload budget is segmented across several frames.
//
// Packetizer is not safe for concurrent use; each worker sender owns one.
type Packetizer struct {
	src        Addr
	maxPayload int
	nextSegID  uint32

	// Per-destination staging buffers. A small topology has a handful of
	// next hops, so a map of slices is fine.
	staged map[Addr]*stage
}

type stage struct {
	tuples [][]byte
	bytes  int // sum of 4+len(tuple) for staged tuples
}

// NewPacketizer builds a Packetizer for a sender address. maxPayload <= 0
// selects DefaultMaxPayload.
func NewPacketizer(src Addr, maxPayload int) *Packetizer {
	if maxPayload <= 0 {
		maxPayload = DefaultMaxPayload
	}
	return &Packetizer{src: src, maxPayload: maxPayload, staged: make(map[Addr]*stage)}
}

// MaxPayload returns the frame payload budget.
func (p *Packetizer) MaxPayload() int { return p.maxPayload }

// Add stages one encoded tuple for dst and returns any frames that became
// ready (a full multiplexed frame, or the complete segment train of an
// oversized tuple).
func (p *Packetizer) Add(dst Addr, encoded []byte) [][]byte {
	need := 4 + len(encoded)
	if need > p.maxPayload {
		// Oversized: flush whatever is staged for this destination first so
		// ordering is preserved, then emit the segment train.
		frames := p.flushDst(dst, nil)
		return append(frames, p.segment(dst, encoded)...)
	}
	st := p.staged[dst]
	if st == nil {
		st = &stage{}
		p.staged[dst] = st
	}
	var frames [][]byte
	if st.bytes+need > p.maxPayload {
		frames = p.flushDst(dst, frames)
		st = p.staged[dst]
		if st == nil {
			st = &stage{}
			p.staged[dst] = st
		}
	}
	st.tuples = append(st.tuples, encoded)
	st.bytes += need
	return frames
}

// FlushAll emits one frame per destination with staged tuples and clears
// the staging area. The worker I/O layer calls this when the configurable
// batch threshold is reached or a batch timer fires.
func (p *Packetizer) FlushAll() [][]byte {
	var frames [][]byte
	for dst := range p.staged {
		frames = p.flushDst(dst, frames)
	}
	return frames
}

// Pending reports the number of tuples currently staged across all
// destinations.
func (p *Packetizer) Pending() int {
	n := 0
	for _, st := range p.staged {
		n += len(st.tuples)
	}
	return n
}

func (p *Packetizer) flushDst(dst Addr, frames [][]byte) [][]byte {
	st := p.staged[dst]
	if st == nil || len(st.tuples) == 0 {
		return frames
	}
	frames = append(frames, EncodeTuples(dst, p.src, st.tuples))
	delete(p.staged, dst)
	return frames
}

func (p *Packetizer) segment(dst Addr, encoded []byte) [][]byte {
	chunk := p.maxPayload - segHeaderLen
	count := (len(encoded) + chunk - 1) / chunk
	id := p.nextSegID
	p.nextSegID++
	frames := make([][]byte, 0, count)
	for i := 0; i < count; i++ {
		lo, hi := i*chunk, (i+1)*chunk
		if hi > len(encoded) {
			hi = len(encoded)
		}
		frames = append(frames, EncodeSegment(dst, p.src, Segment{
			ID:    id,
			Index: uint16(i),
			Count: uint16(count),
			Data:  encoded[lo:hi],
		}))
	}
	return frames
}

// Incoming is one reassembled encoded tuple together with its source.
type Incoming struct {
	Src  Addr
	Dst  Addr
	Data []byte
}

// maxReassemblies bounds in-flight segment reassembly state per
// Depacketizer; beyond it the oldest entry is evicted (its tuple is lost,
// which the switch-loss handling of the paper's §8 already tolerates).
const maxReassemblies = 1024

// Depacketizer converts received frames back into encoded tuples, handling
// demultiplexing and segment reassembly (ingress workflow of the southbound
// library). It is not safe for concurrent use.
type Depacketizer struct {
	partial map[reasmKey]*reassembly
	order   []reasmKey // FIFO for eviction
}

type reasmKey struct {
	src Addr
	id  uint32
}

type reassembly struct {
	dst      Addr
	parts    [][]byte
	received int
}

// NewDepacketizer builds an empty Depacketizer.
func NewDepacketizer() *Depacketizer {
	return &Depacketizer{partial: make(map[reasmKey]*reassembly)}
}

// Feed consumes one raw frame and returns any complete tuples it yields.
// Returned Data slices alias raw for multiplexed frames; callers that
// retain them across Feed calls must copy.
func (d *Depacketizer) Feed(raw []byte) ([]Incoming, error) {
	f, err := Decode(raw)
	if err != nil {
		return nil, err
	}
	if f.Segment == nil {
		out := make([]Incoming, 0, len(f.Tuples))
		for _, t := range f.Tuples {
			out = append(out, Incoming{Src: f.Src, Dst: f.Dst, Data: t})
		}
		return out, nil
	}
	seg := f.Segment
	if seg.Count == 0 || seg.Index >= seg.Count {
		return nil, ErrCorruptFrame
	}
	key := reasmKey{src: f.Src, id: seg.ID}
	r := d.partial[key]
	if r == nil {
		r = &reassembly{dst: f.Dst, parts: make([][]byte, seg.Count)}
		d.partial[key] = r
		d.order = append(d.order, key)
		d.evict()
	}
	if int(seg.Count) != len(r.parts) {
		return nil, ErrCorruptFrame
	}
	if r.parts[seg.Index] == nil {
		// Segments must be copied: the fragment aliases the caller's buffer
		// but outlives this call.
		buf := make([]byte, len(seg.Data))
		copy(buf, seg.Data)
		r.parts[seg.Index] = buf
		r.received++
	}
	if r.received < len(r.parts) {
		return nil, nil
	}
	size := 0
	for _, p := range r.parts {
		size += len(p)
	}
	data := make([]byte, 0, size)
	for _, p := range r.parts {
		data = append(data, p...)
	}
	delete(d.partial, key)
	return []Incoming{{Src: f.Src, Dst: r.dst, Data: data}}, nil
}

// PendingReassemblies reports in-flight segment reassembly count.
func (d *Depacketizer) PendingReassemblies() int { return len(d.partial) }

func (d *Depacketizer) evict() {
	for len(d.partial) > maxReassemblies && len(d.order) > 0 {
		k := d.order[0]
		d.order = d.order[1:]
		delete(d.partial, k)
	}
	// Compact order lazily: drop leading keys already completed.
	for len(d.order) > 0 {
		if _, ok := d.partial[d.order[0]]; ok {
			break
		}
		d.order = d.order[1:]
	}
}

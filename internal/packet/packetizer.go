package packet

import "encoding/binary"

// Packetizer converts encoded tuples into frames. It mirrors the egress
// workflow of the southbound transport library: multiple small tuples with
// the same source/destination are multiplexed into one frame; one tuple
// larger than the payload budget is segmented across several frames.
//
// The fast path is allocation-free in steady state: each destination stages
// directly into a pooled frame buffer (the tuple bytes are copied in as they
// arrive, so callers may reuse their encoding scratch immediately), and the
// slice of ready frames returned by Add/FlushAll is an internal scratch that
// is only valid until the next call. Emitted frame buffers are handed off to
// the caller, which hands them to the switch; they re-enter the pool at the
// receiving transport (see pool.go for the ownership protocol).
//
// Packetizer is not safe for concurrent use; each worker sender owns one.
type Packetizer struct {
	src        Addr
	maxPayload int
	nextSegID  uint32

	// Per-destination staging buffers. A destination's stage persists
	// across flushes while traffic keeps arriving (the frame buffer is
	// handed off on flush and lazily replaced from the pool on the next
	// Add), but a destination that goes quiet — placement churn, rescale,
	// a crashed downstream worker — is evicted after stageIdleFlushes
	// FlushAll generations so stale stages neither accumulate nor stretch
	// every future FlushAll sweep.
	staged map[Addr]*stage

	// flushGen counts FlushAll calls, the idle-eviction clock.
	flushGen uint64

	// lastDst/lastStage memoize the most recent destination's stage. Real
	// senders emit runs of tuples toward the same downstream task (a batch
	// routed by key or round-robin), so the common Add skips the map lookup.
	lastDst   Addr
	lastStage *stage

	// ready is the reusable container returned by Add and FlushAll.
	ready [][]byte
}

// stageIdleFlushes is how many FlushAll generations a destination may sit
// empty before its stage is evicted. Flushes run at batch cadence
// (milliseconds), so live destinations refresh constantly and eviction
// only ever collects genuinely dead ones.
const stageIdleFlushes = 8

type stage struct {
	// buf is the frame under construction: header followed by staged
	// length-prefixed tuples. nil between a flush and the next Add.
	buf   []byte
	count int // staged tuples

	// lastUsed is the flush generation of the most recent Add.
	lastUsed uint64
}

// payloadLen reports the staged payload bytes (excluding the frame header).
func (st *stage) payloadLen() int {
	if st.buf == nil {
		return 0
	}
	return len(st.buf) - HeaderLen
}

// NewPacketizer builds a Packetizer for a sender address. maxPayload <= 0
// selects DefaultMaxPayload.
func NewPacketizer(src Addr, maxPayload int) *Packetizer {
	if maxPayload <= 0 {
		maxPayload = DefaultMaxPayload
	}
	return &Packetizer{src: src, maxPayload: maxPayload, staged: make(map[Addr]*stage)}
}

// MaxPayload returns the frame payload budget.
func (p *Packetizer) MaxPayload() int { return p.maxPayload }

// Add stages one encoded tuple for dst and returns any frames that became
// ready (a full multiplexed frame, or the complete segment train of an
// oversized tuple). The tuple bytes are copied into the staging buffer, so
// the caller may reuse encoded immediately. The returned slice is reused by
// the next Add/FlushAll call; consume it before then.
func (p *Packetizer) Add(dst Addr, encoded []byte) [][]byte {
	p.ready = p.ready[:0]
	need := 4 + len(encoded)
	if need > p.maxPayload {
		// Oversized: flush whatever is staged for this destination first so
		// ordering is preserved, then emit the segment train.
		p.flushDst(dst)
		return p.segment(dst, encoded)
	}
	st := p.lastStage
	if st == nil || p.lastDst != dst {
		st = p.staged[dst]
		if st == nil {
			st = &stage{}
			p.staged[dst] = st
		}
		p.lastDst, p.lastStage = dst, st
	}
	st.lastUsed = p.flushGen
	if st.payloadLen()+need > p.maxPayload {
		p.flushDst(dst)
	}
	if st.buf == nil {
		st.buf = appendHeader(GetFrameBuf(), dst, p.src, flagTuples)
	}
	st.buf = binary.LittleEndian.AppendUint32(st.buf, uint32(len(encoded)))
	st.buf = append(st.buf, encoded...)
	st.count++
	return p.ready
}

// FlushAll emits one frame per destination with staged tuples. The worker
// I/O layer calls this when the configurable batch threshold is reached or a
// batch timer fires. Destinations idle for more than stageIdleFlushes
// flush generations are evicted on the way through, returning any staged
// buffer to the pool. The returned slice is reused by the next
// Add/FlushAll call; consume it before then.
func (p *Packetizer) FlushAll() [][]byte {
	p.ready = p.ready[:0]
	p.flushGen++
	for dst, st := range p.staged {
		if st.count > 0 {
			p.flushDst(dst)
			continue
		}
		if p.flushGen-st.lastUsed > stageIdleFlushes {
			if st.buf != nil {
				// Unreachable today (buf implies count > 0), but eviction
				// must never strand a pooled buffer.
				PutFrameBuf(st.buf)
			}
			if st == p.lastStage {
				p.lastStage = nil
			}
			delete(p.staged, dst)
		}
	}
	return p.ready
}

// Stages reports the number of per-destination staging buffers currently
// held (live plus not-yet-evicted idle ones).
func (p *Packetizer) Stages() int { return len(p.staged) }

// Pending reports the number of tuples currently staged across all
// destinations.
func (p *Packetizer) Pending() int {
	n := 0
	for _, st := range p.staged {
		n += st.count
	}
	return n
}

// flushDst moves dst's staged frame (if any) onto p.ready.
func (p *Packetizer) flushDst(dst Addr) {
	st := p.staged[dst]
	if st == nil || st.count == 0 {
		return
	}
	p.ready = append(p.ready, st.buf)
	st.buf = nil
	st.count = 0
}

// segment appends the fragment train of one oversized tuple to p.ready.
func (p *Packetizer) segment(dst Addr, encoded []byte) [][]byte {
	chunk := p.maxPayload - segHeaderLen
	count := (len(encoded) + chunk - 1) / chunk
	id := p.nextSegID
	p.nextSegID++
	for i := 0; i < count; i++ {
		lo, hi := i*chunk, (i+1)*chunk
		if hi > len(encoded) {
			hi = len(encoded)
		}
		p.ready = append(p.ready, appendSegment(GetFrameBuf(), dst, p.src, Segment{
			ID:    id,
			Index: uint16(i),
			Count: uint16(count),
			Data:  encoded[lo:hi],
		}))
	}
	return p.ready
}

// Incoming is one reassembled encoded tuple together with its source.
type Incoming struct {
	Src  Addr
	Dst  Addr
	Data []byte
}

// maxReassemblies bounds in-flight segment reassembly state per
// Depacketizer; beyond it the oldest entry is evicted (its tuple is lost,
// which the switch-loss handling of the paper's §8 already tolerates).
const maxReassemblies = 1024

// Depacketizer converts received frames back into encoded tuples, handling
// demultiplexing and segment reassembly (ingress workflow of the southbound
// library). It is not safe for concurrent use.
type Depacketizer struct {
	partial map[reasmKey]*reassembly
	order   []reasmKey // FIFO of live reassemblies, for eviction

	// out and tuples are the reusable containers of Feed's hot path.
	out    []Incoming
	tuples [][]byte
}

type reasmKey struct {
	src Addr
	id  uint32
}

type reassembly struct {
	dst      Addr
	parts    [][]byte
	received int
}

// NewDepacketizer builds an empty Depacketizer.
func NewDepacketizer() *Depacketizer {
	return &Depacketizer{partial: make(map[reasmKey]*reassembly)}
}

// Feed consumes one raw frame and returns any complete tuples it yields.
// Returned Data slices alias raw for multiplexed frames, and the returned
// slice itself is reused by the next Feed call; callers that retain either
// across Feed calls must copy.
func (d *Depacketizer) Feed(raw []byte) ([]Incoming, error) {
	f, err := decodeInto(raw, d.tuples[:0])
	if err != nil {
		return nil, err
	}
	d.out = d.out[:0]
	if f.Segment == nil {
		d.tuples = f.Tuples // keep the (possibly regrown) scratch
		for _, t := range f.Tuples {
			d.out = append(d.out, Incoming{Src: f.Src, Dst: f.Dst, Data: t})
		}
		return d.out, nil
	}
	seg := f.Segment
	if seg.Count == 0 || seg.Index >= seg.Count {
		return nil, ErrCorruptFrame
	}
	key := reasmKey{src: f.Src, id: seg.ID}
	r := d.partial[key]
	if r == nil {
		r = &reassembly{dst: f.Dst, parts: make([][]byte, seg.Count)}
		d.partial[key] = r
		d.order = append(d.order, key)
		d.evict()
	}
	if int(seg.Count) != len(r.parts) {
		return nil, ErrCorruptFrame
	}
	if r.parts[seg.Index] == nil {
		// Segments must be copied: the fragment aliases the caller's buffer
		// but outlives this call.
		buf := make([]byte, len(seg.Data))
		copy(buf, seg.Data)
		r.parts[seg.Index] = buf
		r.received++
	}
	if r.received < len(r.parts) {
		return nil, nil
	}
	size := 0
	for _, p := range r.parts {
		size += len(p)
	}
	data := make([]byte, 0, size)
	for _, p := range r.parts {
		data = append(data, p...)
	}
	delete(d.partial, key)
	d.compact(key)
	d.out = append(d.out, Incoming{Src: f.Src, Dst: r.dst, Data: data})
	return d.out, nil
}

// PendingReassemblies reports in-flight segment reassembly count.
func (d *Depacketizer) PendingReassemblies() int { return len(d.partial) }

// compact removes a completed reassembly's key from the eviction FIFO so
// order cannot grow past maxReassemblies plus the map population: without
// this, completed entries lingered in the slice until they aged to the
// front, and a long-lived transport could accumulate an unbounded tail.
func (d *Depacketizer) compact(done reasmKey) {
	for i, k := range d.order {
		if k == done {
			d.order = append(d.order[:i], d.order[i+1:]...)
			return
		}
	}
}

func (d *Depacketizer) evict() {
	for len(d.partial) > maxReassemblies && len(d.order) > 0 {
		k := d.order[0]
		d.order = d.order[1:]
		delete(d.partial, k)
	}
}

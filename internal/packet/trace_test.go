package packet

import (
	"bytes"
	"testing"

	"typhoon/internal/tuple"
)

func TestTraceAnnexRoundTrip(t *testing.T) {
	src, dst := WorkerAddr(1, 10), WorkerAddr(1, 20)
	enc := tuple.Encode(tuple.New(tuple.String("hello"), tuple.Int(7)))
	raw := EncodeTuples(dst, src, [][]byte{enc})
	if Traced(raw) {
		t.Fatal("fresh frame should be untraced")
	}

	traced := WithTrace(raw, TraceAnnex{ID: 0xDEAD, Hops: []TraceHop{
		{Kind: HopEmit, Actor: 10, Detail: 1, At: 100},
	}})
	if !Traced(traced) {
		t.Fatal("WithTrace did not mark the frame")
	}
	if Traced(raw) {
		t.Fatal("WithTrace mutated the input frame")
	}

	// Append the hops a one-switch path records.
	hops := []TraceHop{
		{Kind: HopSwitchIn, Actor: 1, Detail: 3, At: 200},
		{Kind: HopMatch, Actor: 1, Detail: 100, At: 300},
		{Kind: HopEgress, Actor: 1, Detail: 4, At: 400},
		{Kind: HopDequeue, Actor: 20, Detail: 1, At: 500},
	}
	for _, h := range hops {
		traced = AppendTraceHop(traced, h)
	}

	annex, ok := ExtractTrace(traced)
	if !ok {
		t.Fatal("ExtractTrace failed")
	}
	if annex.ID != 0xDEAD {
		t.Fatalf("trace ID = %#x", annex.ID)
	}
	want := append([]TraceHop{{Kind: HopEmit, Actor: 10, Detail: 1, At: 100}}, hops...)
	if len(annex.Hops) != len(want) {
		t.Fatalf("got %d hops, want %d", len(annex.Hops), len(want))
	}
	for i, h := range annex.Hops {
		if h != want[i] {
			t.Fatalf("hop %d = %+v, want %+v", i, h, want[i])
		}
	}

	// The payload must still decode to the original tuples.
	f, err := Decode(traced)
	if err != nil {
		t.Fatal(err)
	}
	if f.Trace == nil || f.Trace.ID != 0xDEAD || len(f.Trace.Hops) != len(want) {
		t.Fatalf("Decode trace = %+v", f.Trace)
	}
	if len(f.Tuples) != 1 || !bytes.Equal(f.Tuples[0], enc) {
		t.Fatal("payload corrupted by trace annex")
	}
	if f.Dst != dst || f.Src != src {
		t.Fatal("addresses corrupted by trace annex")
	}
}

func TestTraceAnnexHopCap(t *testing.T) {
	raw := EncodeTuples(WorkerAddr(1, 2), WorkerAddr(1, 1), [][]byte{tuple.Encode(tuple.New(tuple.Int(1)))})
	traced := WithTrace(raw, TraceAnnex{ID: 1})
	for i := 0; i < MaxTraceHops+10; i++ {
		traced = AppendTraceHop(traced, TraceHop{Kind: HopSwitchIn, Actor: uint64(i)})
	}
	annex, ok := ExtractTrace(traced)
	if !ok {
		t.Fatal("ExtractTrace failed")
	}
	if len(annex.Hops) != MaxTraceHops {
		t.Fatalf("hop cap not enforced: %d hops", len(annex.Hops))
	}
	if _, err := Decode(traced); err != nil {
		t.Fatalf("capped frame no longer decodes: %v", err)
	}
}

func TestTracedFrameThroughDepacketizer(t *testing.T) {
	src, dst := WorkerAddr(2, 1), WorkerAddr(2, 2)
	enc := tuple.Encode(tuple.New(tuple.String("x")))
	raw := WithTrace(EncodeTuples(dst, src, [][]byte{enc}), TraceAnnex{ID: 9})

	d := NewDepacketizer()
	ins, err := d.Feed(raw)
	if err != nil {
		t.Fatal(err)
	}
	if len(ins) != 1 || !bytes.Equal(ins[0].Data, enc) {
		t.Fatalf("depacketizer on traced frame: %+v", ins)
	}
}

func TestAppendTraceHopOnUntracedFrame(t *testing.T) {
	raw := EncodeTuples(WorkerAddr(1, 2), WorkerAddr(1, 1), [][]byte{tuple.Encode(tuple.New(tuple.Int(1)))})
	out := AppendTraceHop(raw, TraceHop{Kind: HopSwitchIn})
	if !bytes.Equal(out, raw) {
		t.Fatal("AppendTraceHop changed an untraced frame")
	}
	if _, ok := ExtractTrace(raw); ok {
		t.Fatal("ExtractTrace on untraced frame")
	}
}

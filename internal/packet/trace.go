package packet

import (
	"encoding/binary"
	"errors"
	"fmt"
	"strconv"
)

// Tuple-path tracing: a sampled frame carries an optional trace annex — a
// compact hop log appended to by every element the frame traverses (worker
// emit, switch ingress, flow-rule match, egress/replication, tunnel, worker
// dequeue). The annex rides inside the 0xFFFF frame between the header and
// the payload, so it crosses tunnels and switch replication unchanged, and
// untraced frames pay only a one-byte flag test.

// HopKind identifies one stage of a frame's path through the data plane.
type HopKind uint8

// Hop kinds, in the order they typically appear in a trace.
const (
	// HopEmit is recorded by the sending worker's I/O layer when the frame
	// leaves the packetizer — once per batch frame, not per tuple. Actor is
	// the worker ID, Detail the frame's tuple count (TupleCount).
	HopEmit HopKind = iota + 1
	// HopSwitchIn is recorded at switch ingress. Actor is the datapath ID,
	// Detail the ingress port number.
	HopSwitchIn
	// HopMatch is recorded when a flow rule matches. Actor is the datapath
	// ID, Detail the rule priority.
	HopMatch
	// HopEgress is recorded per delivered copy at a worker port. Actor is
	// the datapath ID, Detail the egress port number. A replicated frame
	// (GroupAll / multi-output rules) carries one HopEgress per copy only on
	// the copy itself; the trace of each copy shows its own egress.
	HopEgress
	// HopTunnel is recorded when the frame leaves through a tunnel port
	// toward a remote host. Actor is the datapath ID, Detail the tunnel
	// port number.
	HopTunnel
	// HopController is recorded when the frame is punted to the SDN
	// controller (PACKET_IN). Actor is the datapath ID.
	HopController
	// HopDequeue is recorded by the receiving worker's I/O layer when the
	// frame is read back out of its switch port — once per batch frame.
	// Actor is the worker ID, Detail the frame's tuple count.
	HopDequeue
)

// String names the hop kind for rendering.
func (k HopKind) String() string {
	switch k {
	case HopEmit:
		return "emit"
	case HopSwitchIn:
		return "switch-in"
	case HopMatch:
		return "match"
	case HopEgress:
		return "egress"
	case HopTunnel:
		return "tunnel"
	case HopController:
		return "controller"
	case HopDequeue:
		return "dequeue"
	default:
		return "hop(" + strconv.Itoa(int(k)) + ")"
	}
}

// TraceHop is one recorded stage of a traced frame's path.
type TraceHop struct {
	// Kind identifies the stage.
	Kind HopKind `json:"kind"`
	// Actor is the element that recorded the hop: a worker ID for
	// emit/dequeue hops, a datapath ID for switch hops.
	Actor uint64 `json:"actor"`
	// Detail is stage-specific: port number, rule priority, or the batch
	// frame's tuple count for emit/dequeue hops.
	Detail uint32 `json:"detail"`
	// At is the hop's wall-clock time in Unix nanoseconds.
	At int64 `json:"at"`
}

// TraceAnnex is the hop log carried by a traced frame.
type TraceAnnex struct {
	// ID identifies the trace; unique per sampled frame per sender.
	ID uint64 `json:"id"`
	// Hops are the recorded stages in traversal order.
	Hops []TraceHop `json:"hops"`
}

// MaxTraceHops caps the hops one annex can carry; appends beyond the cap
// are silently dropped so a forwarding loop cannot grow frames unboundedly.
const MaxTraceHops = 32

const (
	flagTraced     = 0x80  // flags bit: trace annex present after the header
	traceFixedLen  = 8 + 1 // id + hop count
	traceHopEncLen = 1 + 8 + 4 + 8
)

// ErrBadTrace is returned when a trace annex is malformed.
var ErrBadTrace = errors.New("packet: malformed trace annex")

// Traced reports whether the raw frame carries a trace annex. It is the
// cheap test the switch data path performs on every frame.
func Traced(raw []byte) bool {
	return len(raw) >= HeaderLen && raw[14]&flagTraced != 0
}

func appendTraceAnnex(buf []byte, a TraceAnnex) []byte {
	n := len(a.Hops)
	if n > MaxTraceHops {
		n = MaxTraceHops
	}
	buf = binary.LittleEndian.AppendUint16(buf, uint16(traceFixedLen+n*traceHopEncLen))
	buf = binary.LittleEndian.AppendUint64(buf, a.ID)
	buf = append(buf, byte(n))
	for _, h := range a.Hops[:n] {
		buf = append(buf, byte(h.Kind))
		buf = binary.LittleEndian.AppendUint64(buf, h.Actor)
		buf = binary.LittleEndian.AppendUint32(buf, h.Detail)
		buf = binary.LittleEndian.AppendUint64(buf, uint64(h.At))
	}
	return buf
}

func decodeTraceAnnex(body []byte) (TraceAnnex, error) {
	if len(body) < traceFixedLen {
		return TraceAnnex{}, ErrBadTrace
	}
	a := TraceAnnex{ID: binary.LittleEndian.Uint64(body)}
	n := int(body[8])
	if len(body) != traceFixedLen+n*traceHopEncLen {
		return TraceAnnex{}, ErrBadTrace
	}
	a.Hops = make([]TraceHop, n)
	for i := 0; i < n; i++ {
		off := traceFixedLen + i*traceHopEncLen
		a.Hops[i] = TraceHop{
			Kind:   HopKind(body[off]),
			Actor:  binary.LittleEndian.Uint64(body[off+1:]),
			Detail: binary.LittleEndian.Uint32(body[off+9:]),
			At:     int64(binary.LittleEndian.Uint64(body[off+13:])),
		}
	}
	return a, nil
}

// traceAnnexBounds locates the annex within a traced frame: the annex bytes
// span raw[HeaderLen+2 : HeaderLen+2+n]. ok is false for untraced or
// malformed frames.
func traceAnnexBounds(raw []byte) (n int, ok bool) {
	if !Traced(raw) || len(raw) < HeaderLen+2 {
		return 0, false
	}
	n = int(binary.LittleEndian.Uint16(raw[HeaderLen:]))
	if n < traceFixedLen || len(raw) < HeaderLen+2+n {
		return 0, false
	}
	return n, true
}

// WithTrace rebuilds an untraced frame with the given annex attached. It
// returns raw unchanged when the frame is already traced or too short.
func WithTrace(raw []byte, a TraceAnnex) []byte {
	if len(raw) < HeaderLen || Traced(raw) {
		return raw
	}
	buf := make([]byte, 0, len(raw)+2+traceFixedLen+len(a.Hops)*traceHopEncLen)
	buf = append(buf, raw[:HeaderLen]...)
	buf[14] |= flagTraced
	buf = appendTraceAnnex(buf, a)
	return append(buf, raw[HeaderLen:]...)
}

// AppendTraceHop returns a copy of the traced frame with one more hop in
// its annex. It returns raw unchanged when the frame is untraced, the annex
// is malformed, or the hop cap is reached. The input frame is never
// mutated, so callers may freely alias it across replicated deliveries.
func AppendTraceHop(raw []byte, hop TraceHop) []byte {
	n, ok := traceAnnexBounds(raw)
	if !ok {
		return raw
	}
	count := int(raw[HeaderLen+2+8])
	if count >= MaxTraceHops || n != traceFixedLen+count*traceHopEncLen {
		return raw
	}
	annexEnd := HeaderLen + 2 + n
	buf := make([]byte, 0, len(raw)+traceHopEncLen)
	buf = append(buf, raw[:annexEnd]...)
	binary.LittleEndian.PutUint16(buf[HeaderLen:], uint16(n+traceHopEncLen))
	buf[HeaderLen+2+8] = byte(count + 1)
	buf = append(buf, byte(hop.Kind))
	buf = binary.LittleEndian.AppendUint64(buf, hop.Actor)
	buf = binary.LittleEndian.AppendUint32(buf, hop.Detail)
	buf = binary.LittleEndian.AppendUint64(buf, uint64(hop.At))
	return append(buf, raw[annexEnd:]...)
}

// ExtractTrace decodes the annex of a traced frame without decoding the
// payload (the receive-side I/O layer uses it before depacketizing).
func ExtractTrace(raw []byte) (TraceAnnex, bool) {
	n, ok := traceAnnexBounds(raw)
	if !ok {
		return TraceAnnex{}, false
	}
	a, err := decodeTraceAnnex(raw[HeaderLen+2 : HeaderLen+2+n])
	if err != nil {
		return TraceAnnex{}, false
	}
	return a, true
}

// String renders the annex as a one-line hop chain for logs.
func (a TraceAnnex) String() string {
	s := fmt.Sprintf("trace %#x:", a.ID)
	for _, h := range a.Hops {
		s += fmt.Sprintf(" %s(%d/%d)", h.Kind, h.Actor, h.Detail)
	}
	return s
}

package packet

import (
	"reflect"
	"testing"
)

// FuzzDecode throws arbitrary frames at the frame decoder and the
// depacketizer ingress path — the two entry points that parse bytes
// straight off the wire. Neither may panic, and any frame Decode accepts
// must round-trip through the matching encoder to an identical frame.
func FuzzDecode(f *testing.F) {
	src := WorkerAddr(1, 2)
	dst := WorkerAddr(3, 4)
	seeds := [][]byte{
		EncodeTuples(dst, src, [][]byte{[]byte("hello"), {}, []byte("world")}),
		EncodeSegment(dst, src, Segment{ID: 7, Index: 0, Count: 2, Data: []byte("frag0")}),
		EncodeSegment(dst, src, Segment{ID: 7, Index: 1, Count: 2, Data: []byte("frag1")}),
		WithTrace(
			EncodeTuples(dst, src, [][]byte{[]byte("t")}),
			TraceAnnex{ID: 9, Hops: []TraceHop{{Kind: HopEmit, Actor: 1, Detail: 2, At: 3}}},
		),
	}
	for _, raw := range seeds {
		f.Add(raw)
		f.Add(raw[:HeaderLen])
		f.Add(raw[:len(raw)-1])
	}
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, raw []byte) {
		// The depacketizer must survive any input, including feeding the
		// same frame twice (duplicate segments, scratch-slice reuse).
		d := NewDepacketizer()
		if _, err := d.Feed(raw); err == nil {
			_, _ = d.Feed(raw)
		}

		fr, err := Decode(raw)
		if err != nil {
			return
		}
		pDst, pSrc, ok := PeekAddrs(raw)
		if !ok || pDst != fr.Dst || pSrc != fr.Src {
			t.Fatalf("PeekAddrs disagrees with Decode: ok=%v dst=%v src=%v frame=%+v", ok, pDst, pSrc, fr)
		}
		if Traced(raw) != (fr.Trace != nil) {
			t.Fatalf("Traced()=%v but decoded Trace=%v", Traced(raw), fr.Trace)
		}
		var re []byte
		if fr.Segment != nil {
			re = EncodeSegment(fr.Dst, fr.Src, *fr.Segment)
		} else {
			re = EncodeTuples(fr.Dst, fr.Src, fr.Tuples)
		}
		if fr.Trace != nil {
			re = WithTrace(re, *fr.Trace)
		}
		fr2, err := Decode(re)
		if err != nil {
			t.Fatalf("re-decode of accepted frame failed: %v (frame %+v)", err, fr)
		}
		if !reflect.DeepEqual(fr, fr2) {
			t.Fatalf("frame changed across round trip:\n first  %+v\n second %+v", fr, fr2)
		}
	})
}

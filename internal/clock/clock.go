// Package clock provides a coarse-grained wall clock for data-plane hot
// paths. Per-frame time.Now() calls are one of the dominant fixed costs of a
// software switch pipeline (two vDSO calls per forwarded frame in the
// pre-fast-path switch); flow-rule idle tracking and tuple-path trace hops
// only need millisecond-ish accuracy, so they read a cached timestamp that a
// single background ticker refreshes instead.
package clock

import (
	"sync"
	"sync/atomic"
	"time"
)

// CoarseGranularity is the refresh period of the coarse clock. Readers see
// timestamps at most about this much behind the real wall clock (scheduler
// jitter can stretch it slightly). Flow idle timeouts are tens of
// milliseconds and trace hops are for human inspection, so 500µs of skew is
// invisible to both.
const CoarseGranularity = 500 * time.Microsecond

var (
	coarse    atomic.Int64
	startOnce sync.Once
)

// start launches the refresher goroutine. It runs for the life of the
// process, like the runtime's own background timers; a data plane that has
// touched the clock once keeps it warm forever.
func start() {
	coarse.Store(time.Now().UnixNano())
	go func() {
		t := time.NewTicker(CoarseGranularity)
		defer t.Stop() // unreachable; keeps vet happy about the ticker
		for range t.C {
			coarse.Store(time.Now().UnixNano())
		}
	}()
}

// CoarseUnixNano returns the cached wall-clock time in Unix nanoseconds.
// After the first call it is a single atomic load — no syscall, no vDSO.
func CoarseUnixNano() int64 {
	startOnce.Do(start)
	return coarse.Load()
}

// CoarseNow returns the cached wall-clock time as a time.Time.
func CoarseNow() time.Time {
	return time.Unix(0, CoarseUnixNano())
}

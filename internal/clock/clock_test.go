package clock

import (
	"testing"
	"time"
)

func TestCoarseTracksWallClock(t *testing.T) {
	first := CoarseUnixNano()
	if first == 0 {
		t.Fatal("coarse clock not initialised")
	}
	// The cached value must stay within a loose bound of the real clock and
	// advance as the ticker refreshes it.
	deadline := time.Now().Add(2 * time.Second)
	for CoarseUnixNano() == first {
		if time.Now().After(deadline) {
			t.Fatal("coarse clock never advanced")
		}
		time.Sleep(CoarseGranularity)
	}
	skew := time.Now().UnixNano() - CoarseUnixNano()
	if skew < 0 {
		t.Fatalf("coarse clock ahead of wall clock by %d ns", -skew)
	}
	if time.Duration(skew) > time.Second {
		t.Fatalf("coarse clock lags wall clock by %v", time.Duration(skew))
	}
}

func TestCoarseNow(t *testing.T) {
	if d := time.Since(CoarseNow()); d < 0 || d > time.Second {
		t.Fatalf("CoarseNow skew %v", d)
	}
}

func TestCoarseAllocFree(t *testing.T) {
	CoarseUnixNano() // warm
	if n := testing.AllocsPerRun(1000, func() { CoarseUnixNano() }); n != 0 {
		t.Fatalf("CoarseUnixNano allocates %.1f per call", n)
	}
}

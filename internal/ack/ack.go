// Package ack implements Storm-style guaranteed processing (§6.1 "tuple
// forwarding with reliability guarantee"): special acker workers track each
// source tuple's processing tree by XOR-ing edge IDs, and notify the
// originating source worker when the XOR reaches zero, i.e. every tuple in
// the tree was processed at least once. Sources replay trees that do not
// complete in time.
//
// Typhoon supports the same mechanism by installing SDN flow rules for the
// acker workers; the worker framework layer emits the INIT/ACK tuples in
// both systems.
package ack

import (
	"time"

	"typhoon/internal/topology"
	"typhoon/internal/tuple"
	"typhoon/internal/worker"
)

// LogicName is the registered computation-logic name of the acker;
// the streaming manager wires an acker node into topologies that request
// guaranteed processing.
const LogicName = "typhoon/acker"

// NodeName is the reserved logical node name for ackers.
const NodeName = "__acker"

func init() {
	worker.RegisterLogic(LogicName, func() worker.Component { return NewAcker() })
}

// Acker tracks tuple trees. Ack tuples have the layout
// [kind, root, xor, src]: kind 0 initialises a tree from a source worker,
// kind 1 folds a processing step into it.
type Acker struct {
	pending map[uint64]*entry
	// MaxAge bounds how long an incomplete tree is tracked; sources
	// replay well before this.
	MaxAge time.Duration

	executed uint64
}

type entry struct {
	xor     uint64
	src     topology.WorkerID
	started time.Time
	init    bool
}

// NewAcker builds an empty acker.
func NewAcker() *Acker {
	return &Acker{pending: make(map[uint64]*entry), MaxAge: 60 * time.Second}
}

// Open implements worker.Component.
func (a *Acker) Open(*worker.Context) error { return nil }

// Close implements worker.Component.
func (a *Acker) Close(*worker.Context) error { return nil }

// Pending reports the number of incomplete trees (for tests).
func (a *Acker) Pending() int { return len(a.pending) }

// Execute implements worker.Bolt.
func (a *Acker) Execute(ctx *worker.Context, in tuple.Tuple) error {
	if in.Stream != tuple.AckStream || in.Len() < 4 {
		return nil
	}
	kind := in.Field(0).AsInt()
	root := uint64(in.Field(1).AsInt())
	xor := uint64(in.Field(2).AsInt())
	e := a.pending[root]
	if e == nil {
		e = &entry{started: time.Now()}
		a.pending[root] = e
	}
	e.xor ^= xor
	if kind == 0 {
		e.init = true
		e.src = topology.WorkerID(in.Field(3).AsInt())
	}
	if e.init && e.xor == 0 {
		delete(a.pending, root)
		// Direct-route the completion to the exact source worker.
		ctx.EmitOn(tuple.CompleteStream, tuple.Int(int64(e.src)), tuple.Int(int64(root)))
	}
	a.executed++
	if a.executed%16384 == 0 {
		a.sweep(time.Now())
	}
	return nil
}

func (a *Acker) sweep(now time.Time) {
	for root, e := range a.pending {
		if now.Sub(e.started) > a.MaxAge {
			delete(a.pending, root)
		}
	}
}

package ack_test

import (
	"sync"
	"testing"
	"time"

	"typhoon/internal/ack"
	"typhoon/internal/tuple"
	"typhoon/internal/worker"
)

// capture records emissions from the acker.
type capture struct {
	mu   sync.Mutex
	out  []tuple.Tuple
	last tuple.StreamID
}

func (c *capture) Emit(values ...tuple.Value) { c.EmitOn(tuple.DefaultStream, values...) }
func (c *capture) EmitOn(s tuple.StreamID, values ...tuple.Value) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.out = append(c.out, tuple.OnStream(s, values...))
	c.last = s
}

func (c *capture) completions() []tuple.Tuple {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]tuple.Tuple(nil), c.out...)
}

func ackTuple(kind, root, xor, src int64) tuple.Tuple {
	return tuple.OnStream(tuple.AckStream,
		tuple.Int(kind), tuple.Int(root), tuple.Int(xor), tuple.Int(src))
}

func TestAckerCompletesLinearChain(t *testing.T) {
	a := ack.NewAcker()
	cap := &capture{}
	ctx := worker.NewContext(cap, 9, ack.NodeName, 0, nil)

	const root, e1, e2 = 100, 200, 300
	// Spout INIT: xor = root.
	a.Execute(ctx, ackTuple(0, root, root, 5))
	// Bolt1 consumed root-edge, emitted e1: ack root^e1.
	a.Execute(ctx, ackTuple(1, root, root^e1, 0))
	// Bolt2 consumed e1, emitted e2: ack e1^e2.
	a.Execute(ctx, ackTuple(1, root, e1^e2, 0))
	if got := cap.completions(); len(got) != 0 {
		t.Fatalf("premature completion: %v", got)
	}
	// Sink consumed e2, emitted nothing: ack e2 → tree complete.
	a.Execute(ctx, ackTuple(1, root, e2, 0))
	got := cap.completions()
	if len(got) != 1 {
		t.Fatalf("completions = %d", len(got))
	}
	if got[0].Stream != tuple.CompleteStream {
		t.Fatal("completion not on CompleteStream")
	}
	if got[0].Field(0).AsInt() != 5 || got[0].Field(1).AsInt() != root {
		t.Fatalf("completion = %v", got[0])
	}
	if a.Pending() != 0 {
		t.Fatal("pending not cleared")
	}
}

func TestAckerHandlesReordering(t *testing.T) {
	a := ack.NewAcker()
	cap := &capture{}
	ctx := worker.NewContext(cap, 9, ack.NodeName, 0, nil)
	const root, e1 = 111, 222
	// ACKs arrive before INIT.
	a.Execute(ctx, ackTuple(1, root, root^e1, 0))
	a.Execute(ctx, ackTuple(1, root, e1, 0))
	if len(cap.completions()) != 0 {
		t.Fatal("completed without INIT")
	}
	a.Execute(ctx, ackTuple(0, root, root, 7))
	if len(cap.completions()) != 1 {
		t.Fatal("did not complete after INIT")
	}
}

func TestAckerFanOutTree(t *testing.T) {
	a := ack.NewAcker()
	cap := &capture{}
	ctx := worker.NewContext(cap, 9, ack.NodeName, 0, nil)
	const root = 42
	children := []int64{1000, 2000, 3000}
	xor := int64(root)
	for _, c := range children {
		xor ^= c
	}
	a.Execute(ctx, ackTuple(0, root, root, 3))
	a.Execute(ctx, ackTuple(1, root, xor, 0)) // splitter: consumed root, emitted 3 children
	for i, c := range children {
		if len(cap.completions()) != 0 {
			t.Fatalf("completed before child %d acked", i)
		}
		a.Execute(ctx, ackTuple(1, root, c, 0)) // each sink consumes one child
	}
	if len(cap.completions()) != 1 {
		t.Fatalf("completions = %d", len(cap.completions()))
	}
}

func TestAckerIndependentTrees(t *testing.T) {
	a := ack.NewAcker()
	cap := &capture{}
	ctx := worker.NewContext(cap, 9, ack.NodeName, 0, nil)
	a.Execute(ctx, ackTuple(0, 1, 1, 5))
	a.Execute(ctx, ackTuple(0, 2, 2, 5))
	a.Execute(ctx, ackTuple(1, 1, 1, 0)) // tree 1 completes
	got := cap.completions()
	if len(got) != 1 || got[0].Field(1).AsInt() != 1 {
		t.Fatalf("completions = %v", got)
	}
	if a.Pending() != 1 {
		t.Fatalf("pending = %d", a.Pending())
	}
}

func TestAckerIgnoresNonAckTuples(t *testing.T) {
	a := ack.NewAcker()
	cap := &capture{}
	ctx := worker.NewContext(cap, 9, ack.NodeName, 0, nil)
	a.Execute(ctx, tuple.New(tuple.Int(1)))
	a.Execute(ctx, tuple.OnStream(tuple.AckStream, tuple.Int(1))) // too short
	if a.Pending() != 0 || len(cap.completions()) != 0 {
		t.Fatal("non-ack tuples should be ignored")
	}
}

func TestAckerSweepDropsStaleTrees(t *testing.T) {
	a := ack.NewAcker()
	a.MaxAge = time.Millisecond
	cap := &capture{}
	ctx := worker.NewContext(cap, 9, ack.NodeName, 0, nil)
	a.Execute(ctx, ackTuple(0, 77, 77, 5))
	time.Sleep(5 * time.Millisecond)
	// Sweeps run every 16384 executions; force them with no-op acks on
	// another root.
	for i := 0; i < 16384; i++ {
		a.Execute(ctx, ackTuple(1, 88, 0, 0))
	}
	if a.Pending() > 1 {
		t.Fatalf("stale tree not swept: pending=%d", a.Pending())
	}
}

func TestAckerRegisteredLogic(t *testing.T) {
	c, err := worker.NewLogic(ack.LogicName)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := c.(worker.Bolt); !ok {
		t.Fatal("acker logic is not a bolt")
	}
}

// Package scenario_test exercises the scenario harness end to end on live
// clusters. It is an external test package because core imports scenario
// (the HTTP route) while these tests drive scenario through core.
package scenario_test

import (
	"context"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"typhoon/internal/apiclient"
	"typhoon/internal/core"
	"typhoon/internal/scenario"
	"typhoon/internal/workload"
)

// newScenarioCluster builds a Typhoon cluster with fast test timings from
// a spec's cluster hints.
func newScenarioCluster(t *testing.T, cs *scenario.ClusterSpec) *core.Cluster {
	t.Helper()
	hosts := []string{"h1", "h2"}
	var qos core.QoSConfig
	if cs != nil {
		if cs.Hosts > 0 {
			hosts = hosts[:0]
			for i := 1; i <= cs.Hosts; i++ {
				hosts = append(hosts, "h"+string(rune('0'+i)))
			}
		}
		qos.Enable = cs.QoS
	}
	c, err := core.NewCluster(core.Config{
		Mode:              core.ModeTyphoon,
		Hosts:             hosts,
		HeartbeatInterval: 100 * time.Millisecond,
		HeartbeatTimeout:  2 * time.Second,
		MonitorInterval:   200 * time.Millisecond,
		DrainDelay:        100 * time.Millisecond,
		RestartDelay:      200 * time.Millisecond,
		DefaultBatchSize:  50,
		QoS:               qos,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Stop)
	return c
}

func loadSpec(t *testing.T, name string) scenario.Spec {
	t.Helper()
	raw, err := os.ReadFile(filepath.Join("..", "..", "examples", "scenarios", name))
	if err != nil {
		t.Fatal(err)
	}
	spec, err := scenario.ParseSpec(raw)
	if err != nil {
		t.Fatal(err)
	}
	return spec
}

// TestScenarioSpecParse validates every shipped spec and pins the
// validation errors hand-written specs most need.
func TestScenarioSpecParse(t *testing.T) {
	for _, name := range []string{
		"steady-skewed.json", "burst-rescale.json",
		"chaos-soak.json", "multi-tenant-contention.json",
	} {
		spec := loadSpec(t, name)
		if len(spec.Tenants) == 0 || spec.Duration <= 0 {
			t.Fatalf("%s: parsed to an empty spec", name)
		}
	}
	cases := []struct {
		raw  string
		want string
	}{
		{`{"name":"x","duration":"1s","tenants":[],"typo":1}`, "typo"},
		{`{"duration":"1s","tenants":[{"name":"a","trace":{"keys":4,"stages":[{"duration":"1s","rate":10}]}}],"chaos":[{"after":"0s","kind":"crash","tenant":"a"}]}`, "strict"},
		{`{"duration":"1s","tenants":[{"name":"a@b","trace":{"keys":4,"stages":[{"duration":"1s","rate":10}]}}]}`, "'@'"},
		{`{"duration":"1s","tenants":[{"name":"a","trace":{"keys":4,"stages":[{"duration":"1s","rate":10}]}}],"rescales":[{"after":"0s","tenant":"zz","parallelism":2}]}`, "unknown tenant"},
	}
	for _, tc := range cases {
		_, err := scenario.ParseSpec([]byte(tc.raw))
		if err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Fatalf("ParseSpec(%s) error = %v, want mention of %q", tc.raw, err, tc.want)
		}
	}
}

// TestScenarioSteadyStrict runs the steady-skewed spec briefly under the
// strict no-loss gate: every invariant must hold and the report must carry
// a multi-point percentile trajectory, not one end-of-run summary.
func TestScenarioSteadyStrict(t *testing.T) {
	spec := loadSpec(t, "steady-skewed.json")
	spec.SampleInterval = workload.Duration(500 * time.Millisecond)
	c := newScenarioCluster(t, spec.Cluster)
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	report, err := c.RunScenario(ctx, spec, scenario.Options{Duration: 3 * time.Second, Log: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	if !report.OK {
		t.Fatalf("strict run failed:\n%s", report.Summary())
	}
	tr := report.Tenants[0]
	if tr.Emitted == 0 || tr.Delivered != tr.Emitted || tr.Gaps != 0 {
		t.Fatalf("emitted %d delivered %d gaps %d; want lossless delivery", tr.Emitted, tr.Delivered, tr.Gaps)
	}
	if len(tr.OpenLoop.Trajectory) < 3 {
		t.Fatalf("open-loop trajectory has %d points; want a sampled trajectory", len(tr.OpenLoop.Trajectory))
	}
	for _, pt := range tr.OpenLoop.Trajectory {
		if pt.Count == 0 || pt.P99ms < pt.P50ms {
			t.Fatalf("malformed trajectory point %+v", pt)
		}
	}
}

// TestScenarioOpenLoopStall pins the harness's whole reason for being
// open-loop: a 400ms injected stall at the source must show up in the
// intended-start (open-loop) p99, while the send-stamped (closed-loop)
// measurement of the very same run hides it — the coordinated-omission
// error a completion-paced generator bakes into its numbers.
func TestScenarioOpenLoopStall(t *testing.T) {
	spec := scenario.Spec{
		Name:           "stall",
		Seed:           5,
		Duration:       workload.Duration(3 * time.Second),
		SampleInterval: workload.Duration(500 * time.Millisecond),
		Tenants: []scenario.TenantSpec{{
			Name:        "alpha",
			Parallelism: 2,
			Trace: workload.TraceSpec{
				Keys:   16,
				Stages: []workload.TraceStage{{Duration: workload.Duration(time.Second), Rate: 800}},
				Loop:   true,
			},
		}},
		Chaos: []scenario.ChaosEvent{{
			After:    workload.Duration(time.Second),
			Kind:     "hang",
			Tenant:   "alpha",
			Node:     scenario.NodeSource,
			Duration: workload.Duration(400 * time.Millisecond),
		}},
	}
	spec = spec.WithDefaults()
	c := newScenarioCluster(t, nil)
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	report, err := c.RunScenario(ctx, spec, scenario.Options{Log: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	if !report.OK {
		t.Fatalf("stall run failed:\n%s", report.Summary())
	}
	tr := report.Tenants[0]
	open, closed := tr.OpenLoop.P99ms, tr.ClosedLoop.P99ms
	// ~13% of intended sends fall inside the 400ms stall window, so the
	// open-loop p99 must carry most of the stall.
	if open < 150 {
		t.Fatalf("open-loop p99 %.1fms does not reflect the 400ms stall", open)
	}
	// The closed-loop view of the same run times each tuple from its
	// actual (late) send, so the stall vanishes from it.
	if closed > open/2 {
		t.Fatalf("closed-loop p99 %.1fms vs open-loop %.1fms; expected the stall to be invisible closed-loop", closed, open)
	}
}

// TestScenarioChaosSoak is the soak gate: the shipped chaos-soak spec
// (partitions, crashes, netem loss, flow wipes, a rescale, two looping
// tenants) must hold every relaxed-mode invariant and produce trajectory
// reports. CI's nightly job runs it for minutes via SOAK_DURATION and
// uploads the BENCH_e2e.json written when BENCH_E2E_JSON names a path;
// the default tier-1 run keeps it short.
func TestScenarioChaosSoak(t *testing.T) {
	spec := loadSpec(t, "chaos-soak.json")
	duration := 8 * time.Second
	if env := os.Getenv("SOAK_DURATION"); env != "" {
		d, err := time.ParseDuration(env)
		if err != nil {
			t.Fatalf("bad SOAK_DURATION %q: %v", env, err)
		}
		duration = d
	}
	c := newScenarioCluster(t, spec.Cluster)
	ctx, cancel := context.WithTimeout(context.Background(), duration+2*time.Minute)
	defer cancel()
	report, err := c.RunScenario(ctx, spec, scenario.Options{Duration: duration, Log: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	if out := os.Getenv("BENCH_E2E_JSON"); out != "" {
		if werr := os.WriteFile(out, report.JSON(), 0o644); werr != nil {
			t.Errorf("write %s: %v", out, werr)
		}
	}
	if !report.OK {
		t.Fatalf("soak failed:\n%s", report.Summary())
	}
	if len(report.Schedule) == 0 {
		t.Fatal("soak applied no chaos; the schedule never fired")
	}
	for _, tr := range report.Tenants {
		if tr.Emitted == 0 || tr.Delivered == 0 {
			t.Fatalf("tenant %s moved no tuples", tr.Tenant)
		}
		if tr.Violations != 0 {
			t.Fatalf("tenant %s: %d conformance violations:\n%s", tr.Tenant, tr.Violations, strings.Join(tr.Samples, "\n"))
		}
		if len(tr.OpenLoop.Trajectory) < 2 {
			t.Fatalf("tenant %s: trajectory has %d points; want sampled percentiles over time", tr.Tenant, len(tr.OpenLoop.Trajectory))
		}
	}
}

// TestScenarioAPIRoundTrip drives a run through the full HTTP surface:
// typed client → /api/v1/scenario envelope route → cluster → report.
func TestScenarioAPIRoundTrip(t *testing.T) {
	c := newScenarioCluster(t, nil)
	srv := httptest.NewServer(c.ObserveHandler())
	defer srv.Close()
	raw, err := os.ReadFile(filepath.Join("..", "..", "examples", "scenarios", "steady-skewed.json"))
	if err != nil {
		t.Fatal(err)
	}
	cl := apiclient.New(strings.TrimPrefix(srv.URL, "http://"))
	report, err := cl.ScenarioRun(raw, 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if !report.OK {
		t.Fatalf("API run failed:\n%s", report.Summary())
	}
	if report.Name != "steady-skewed" || len(report.Tenants) != 1 {
		t.Fatalf("unexpected report: %s", report.JSON())
	}
	if report.Tenants[0].OpenLoop.Count == 0 {
		t.Fatal("report carries no latency samples")
	}
	// Malformed specs must be rejected with the envelope error contract.
	if _, err := cl.ScenarioRun([]byte(`{"duration":"1s"}`), 0); err == nil {
		t.Fatal("bad spec accepted")
	}
}

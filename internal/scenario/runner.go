package scenario

import (
	"context"
	"fmt"
	"math/rand"
	"sort"
	"time"

	"typhoon/internal/chaos"
	"typhoon/internal/topology"
	"typhoon/internal/worker"
	"typhoon/internal/workload"
)

// Target is the narrow cluster surface the runner drives. core.Cluster
// adapts onto it; the indirection keeps core → scenario a one-way import.
type Target interface {
	// Env is the shared environment handed to computation logic.
	Env() *worker.SharedEnv
	// Submit deploys a topology and waits for data-plane readiness.
	Submit(ctx context.Context, l *topology.Logical) error
	// Kill removes a topology.
	Kill(topo string) error
	// Rescale runs the §3.5 managed stable rescale.
	Rescale(ctx context.Context, topo, node string, parallelism int) error
	// InjectChaos applies one fault.
	InjectChaos(s chaos.Spec) error
	// WorkersOf lists a node's running workers (chaos target resolution).
	WorkersOf(topo, node string) []*worker.Worker
	// Hosts names the cluster hosts.
	Hosts() []string
}

// Options tune one run without editing its spec.
type Options struct {
	// Duration overrides the spec's play duration when positive.
	Duration time.Duration
	// Log receives progress lines; nil discards them.
	Log func(format string, args ...any)
}

// appBase spaces scenario app IDs away from user topologies.
const appBase = 0x5C00

// startLead is how far in the future the trace clock zero is armed, so
// every source observes the armed epoch before its first event is due.
const startLead = 250 * time.Millisecond

// timelineEntry is one scheduled action (chaos or rescale) on the run
// clock.
type timelineEntry struct {
	at      time.Duration
	chaos   *ChaosEvent
	rescale *RescaleStep
}

// Run executes one scenario against a live cluster: submit the tenant
// pipelines, arm the shared trace clock, play the chaos and rescale
// schedule, drain, audit the conformance invariants, and render the
// report. The spec must already be normalized (ParseSpec or
// WithDefaults+Validate).
func Run(ctx context.Context, t Target, spec Spec, opts Options) (*Report, error) {
	if opts.Duration > 0 {
		spec.Duration = workload.Duration(opts.Duration)
	}
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	logf := opts.Log
	if logf == nil {
		logf = func(string, ...any) {}
	}
	run, err := newRunState(spec)
	if err != nil {
		return nil, err
	}
	t.Env().Set(EnvRun, run)

	report := &Report{
		Name:           spec.Name,
		Seed:           spec.Seed,
		Relaxed:        spec.Relaxed,
		Duration:       spec.Duration,
		SampleInterval: spec.SampleInterval,
	}
	submitted := make([]string, 0, len(spec.Tenants))
	defer func() {
		for _, topo := range submitted {
			if kerr := t.Kill(topo); kerr != nil {
				logf("kill %s: %v", topo, kerr)
			}
		}
	}()
	for i, ts := range spec.Tenants {
		l, berr := buildTenantTopology(ts, appBase+i)
		if berr != nil {
			return nil, berr
		}
		if serr := t.Submit(ctx, l); serr != nil {
			return nil, fmt.Errorf("scenario: submit %s: %w", l.Name, serr)
		}
		submitted = append(submitted, l.Name)
		logf("submitted %s (stage parallelism %d)", l.Name, ts.Parallelism)
	}

	epoch := time.Now().Add(startLead)
	run.Arm(epoch)
	logf("trace clock armed; playing %v", spec.Duration.D())

	if err := playSchedule(ctx, t, spec, run, epoch, report, logf); err != nil {
		return nil, err
	}
	if err := drain(ctx, t, spec, run, logf); err != nil {
		report.Failures = append(report.Failures, err.Error())
	}
	finishReport(spec, run, report)
	report.OK = len(report.Failures) == 0
	return report, nil
}

// buildTenantTopology assembles one tenant pipeline: open-loop source →
// keyed stateful stage (hash-routed) → latency sink.
func buildTenantTopology(ts TenantSpec, app int) (*topology.Logical, error) {
	b := topology.NewBuilder(ts.Topology(), uint16(app))
	if ts.Class != "" {
		b.QoS(ts.Class, ts.RateBps)
	}
	src := NodeSource + "@" + ts.Name
	stage := NodeStage + "@" + ts.Name
	sink := NodeSink + "@" + ts.Name
	b.Source(src, LogicOpenLoopSource, 1)
	b.Node(stage, LogicKeyedStage, ts.Parallelism).Stateful().FieldsFrom(src, 0)
	b.Node(sink, LogicLatencySink, 1).GlobalFrom(stage)
	return b.Build()
}

// playSchedule fires the chaos plan and rescale schedule on the run clock
// until the play window closes. Injection failures are recorded, not
// fatal — a soak's job is to keep running.
func playSchedule(ctx context.Context, t Target, spec Spec, run *runState, epoch time.Time, report *Report, logf func(string, ...any)) error {
	playFor := spec.Duration.D()
	var timeline []timelineEntry
	for i := range spec.Chaos {
		e := &spec.Chaos[i]
		at := e.After.D()
		for {
			if at >= playFor {
				break
			}
			timeline = append(timeline, timelineEntry{at: at, chaos: e})
			if e.Repeat <= 0 {
				break
			}
			at += e.Repeat.D()
		}
	}
	for i := range spec.Rescales {
		r := &spec.Rescales[i]
		if r.After.D() < playFor {
			timeline = append(timeline, timelineEntry{at: r.After.D(), rescale: r})
		}
	}
	sort.SliceStable(timeline, func(i, j int) bool { return timeline[i].at < timeline[j].at })

	// The chaos target-selection stream is part of the seed's contract:
	// same spec + seed → same worker picks (modulo live placement).
	rng := rand.New(rand.NewSource(spec.Seed ^ 0x7c3a))
	for _, entry := range timeline {
		if err := sleepUntil(ctx, epoch.Add(entry.at)); err != nil {
			return err
		}
		switch {
		case entry.chaos != nil:
			fireChaos(t, *entry.chaos, rng, report, logf)
		case entry.rescale != nil:
			r := entry.rescale
			topo := "scn-" + r.Tenant
			rctx, cancel := context.WithTimeout(ctx, 30*time.Second)
			err := t.Rescale(rctx, topo, NodeStage+"@"+r.Tenant, r.Parallelism)
			cancel()
			line := fmt.Sprintf("t=%v rescale %s -> %d", entry.at, topo, r.Parallelism)
			if err != nil {
				report.ScheduleErrors = append(report.ScheduleErrors, line+": "+err.Error())
				logf("%s: %v", line, err)
			} else {
				report.Schedule = append(report.Schedule, line)
				logf("%s", line)
			}
		}
	}
	return sleepUntil(ctx, epoch.Add(playFor))
}

// fireChaos resolves and applies one chaos event.
func fireChaos(t Target, e ChaosEvent, rng *rand.Rand, report *Report, logf func(string, ...any)) {
	s := e.spec()
	if e.workerTargeted() {
		workers := t.WorkersOf(s.Topo, e.Node+"@"+e.Tenant)
		if len(workers) == 0 {
			report.ScheduleErrors = append(report.ScheduleErrors,
				fmt.Sprintf("%s %s/%s: no running worker to target", e.Kind, e.Tenant, e.Node))
			return
		}
		s.Worker = workers[rng.Intn(len(workers))].ID()
	}
	if err := t.InjectChaos(s); err != nil {
		report.ScheduleErrors = append(report.ScheduleErrors, s.String()+": "+err.Error())
		logf("chaos %s: %v", s, err)
		return
	}
	report.Schedule = append(report.Schedule, s.String())
	logf("chaos %s", s)
}

// sleepUntil waits for a wall-clock instant or context cancellation.
func sleepUntil(ctx context.Context, at time.Time) error {
	d := time.Until(at)
	if d <= 0 {
		return ctx.Err()
	}
	timer := time.NewTimer(d)
	defer timer.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-timer.C:
		return nil
	}
}

// drain settles the pipelines after the play window. Strict runs wait for
// every emitted tuple to arrive (then the no-loss audit has meaning);
// relaxed runs first heal all links, then wait for delivery totals to go
// quiet — loss is tolerated, so "everything arrived" may never hold.
func drain(ctx context.Context, t Target, spec Spec, run *runState, logf func(string, ...any)) error {
	if spec.Relaxed {
		if err := t.InjectChaos(chaos.Spec{Kind: chaos.KindHeal}); err != nil {
			logf("heal-all before drain: %v", err)
		}
	}
	deadline := time.Now().Add(spec.DrainTimeout.D())
	logf("draining (timeout %v)", spec.DrainTimeout.D())
	quiet := 0
	lastTotals := make(map[string]int64, len(spec.Tenants))
	for {
		allDone := true
		for _, ts := range spec.Tenants {
			ten := run.tenant(ts.Name)
			if !ten.SourceDone() {
				allDone = false
				break
			}
			if spec.Relaxed {
				continue
			}
			_, emitted := ten.Emitted()
			if ten.Checker().Total() != emitted {
				allDone = false
				break
			}
		}
		if allDone && !spec.Relaxed {
			return nil
		}
		if allDone && spec.Relaxed {
			moved := false
			for _, ts := range spec.Tenants {
				total := run.tenant(ts.Name).Checker().Total()
				if total != lastTotals[ts.Name] {
					moved = true
				}
				lastTotals[ts.Name] = total
			}
			if moved {
				quiet = 0
			} else if quiet++; quiet >= 4 {
				return nil // ~1s with no arrivals: drained
			}
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("drain timed out after %v", spec.DrainTimeout.D())
		}
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-time.After(250 * time.Millisecond):
		}
	}
}

// finishReport audits every tenant and assembles the report.
func finishReport(spec Spec, run *runState, report *Report) {
	for _, ts := range spec.Tenants {
		ten := run.tenant(ts.Name)
		emitted, total := ten.Emitted()
		violations, nviol := ten.Checker().Violations()
		tr := TenantReport{
			Tenant:     ts.Name,
			Emitted:    total,
			Delivered:  ten.Checker().Total(),
			Gaps:       ten.Checker().Gaps(),
			Violations: nviol,
			Samples:    violations,
			OpenLoop:   ten.OpenLoop().Report(),
			ClosedLoop: ten.ClosedLoop().Report(),
		}
		var bad []string
		if spec.Relaxed {
			bad = ten.Checker().ViolationFindings()
		} else {
			bad = ten.Checker().CheckComplete(emitted)
		}
		for _, b := range bad {
			report.Failures = append(report.Failures, ts.Name+": "+b)
		}
		report.Tenants = append(report.Tenants, tr)
	}
}

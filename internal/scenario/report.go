package scenario

import (
	"encoding/json"
	"fmt"
	"strings"

	"typhoon/internal/workload"
)

// Report is one run's rendered outcome — the BENCH_e2e.json payload. The
// latency sections are trajectories sampled over the run, not a single
// end-of-run summary, so regressions that only bite mid-chaos or mid-
// rescale stay visible.
type Report struct {
	Name           string            `json:"name"`
	Seed           int64             `json:"seed"`
	Relaxed        bool              `json:"relaxed"`
	Duration       workload.Duration `json:"duration"`
	SampleInterval workload.Duration `json:"sampleInterval"`

	// OK is true when every conformance invariant held and the drain
	// completed.
	OK bool `json:"ok"`
	// Failures lists invariant violations and drain problems.
	Failures []string `json:"failures,omitempty"`
	// Schedule logs the chaos injections and rescales actually applied.
	Schedule []string `json:"schedule,omitempty"`
	// ScheduleErrors logs scheduled actions that could not be applied
	// (e.g. no live worker to target mid-restart). Not failures: a
	// soak's job is to keep running.
	ScheduleErrors []string `json:"scheduleErrors,omitempty"`

	Tenants []TenantReport `json:"tenants"`
}

// TenantReport is one tenant's audit and latency record.
type TenantReport struct {
	Tenant string `json:"tenant"`
	// Emitted/Delivered are tuple totals; Gaps counts tolerated drops
	// (relaxed runs only).
	Emitted   int64 `json:"emitted"`
	Delivered int64 `json:"delivered"`
	Gaps      int64 `json:"gaps"`
	// Violations counts conformance violations; Samples holds the first
	// few rendered.
	Violations int64    `json:"violations"`
	Samples    []string `json:"violationSamples,omitempty"`
	// OpenLoop is intended-start latency (coordinated-omission-free);
	// ClosedLoop is send-stamped latency, recorded side by side to show
	// the gap a completion-paced harness would hide.
	OpenLoop   LatencyReport `json:"openLoop"`
	ClosedLoop LatencyReport `json:"closedLoop"`
}

// JSON renders the report for BENCH_e2e.json.
func (r *Report) JSON() []byte {
	blob, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return []byte(fmt.Sprintf("{\"ok\":false,\"failures\":[%q]}", err.Error()))
	}
	return append(blob, '\n')
}

// Summary renders a terminal-friendly digest.
func (r *Report) Summary() string {
	var b strings.Builder
	status := "PASS"
	if !r.OK {
		status = "FAIL"
	}
	fmt.Fprintf(&b, "scenario %s: %s (seed %d, %v", r.Name, status, r.Seed, r.Duration.D())
	if r.Relaxed {
		b.WriteString(", relaxed")
	}
	b.WriteString(")\n")
	for _, t := range r.Tenants {
		fmt.Fprintf(&b, "  %-16s emitted %7d delivered %7d gaps %5d violations %3d  open-loop p50 %.2fms p99 %.2fms p999 %.2fms\n",
			t.Tenant, t.Emitted, t.Delivered, t.Gaps, t.Violations,
			t.OpenLoop.P50ms, t.OpenLoop.P99ms, t.OpenLoop.P999ms)
	}
	if len(r.Schedule) > 0 {
		fmt.Fprintf(&b, "  schedule: %d actions applied", len(r.Schedule))
		if len(r.ScheduleErrors) > 0 {
			fmt.Fprintf(&b, ", %d skipped", len(r.ScheduleErrors))
		}
		b.WriteString("\n")
	}
	for _, f := range r.Failures {
		fmt.Fprintf(&b, "  FAIL: %s\n", f)
	}
	return b.String()
}

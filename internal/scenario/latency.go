package scenario

import (
	"math"
	"sync"
	"time"
)

// Log-spaced latency buckets: hbuckets buckets growing geometrically from
// hmin, spanning ~1µs to ~100s with ≤8% quantile error — constant memory
// per sample slot, which is what lets a soak sample trajectories for
// hours.
const (
	hbuckets = 128
	hmin     = float64(time.Microsecond)
	hmax     = float64(100 * time.Second)
)

var hgrowth = math.Pow(hmax/hmin, 1.0/float64(hbuckets))

// histo is one fixed-size log-bucketed latency histogram.
type histo struct {
	count  int64
	max    time.Duration
	bucket [hbuckets]int64
}

func (h *histo) record(lat time.Duration) {
	if lat < 0 {
		lat = 0
	}
	i := 0
	if f := float64(lat); f > hmin {
		i = int(math.Log(f/hmin) / math.Log(hgrowth))
		if i >= hbuckets {
			i = hbuckets - 1
		}
	}
	h.bucket[i]++
	h.count++
	if lat > h.max {
		h.max = lat
	}
}

// quantile returns the q-quantile as the geometric midpoint of the bucket
// holding the q-th observation.
func (h *histo) quantile(q float64) time.Duration {
	if h.count == 0 {
		return 0
	}
	rank := int64(q * float64(h.count))
	if rank >= h.count {
		rank = h.count - 1
	}
	var seen int64
	for i, n := range h.bucket {
		seen += n
		if seen > rank {
			mid := hmin * math.Pow(hgrowth, float64(i)+0.5)
			if d := time.Duration(mid); d < h.max {
				return d
			}
			return h.max
		}
	}
	return h.max
}

// Trajectory accumulates latencies into per-interval histograms over the
// run clock plus one overall histogram, yielding percentile trajectories
// (p50/p99/p999 over time) rather than a single end-of-run summary.
type Trajectory struct {
	mu       sync.Mutex
	interval time.Duration
	slots    []*histo
	overall  histo
}

// NewTrajectory builds a trajectory sampled at the given interval.
func NewTrajectory(interval time.Duration) *Trajectory {
	if interval <= 0 {
		interval = DefaultSampleInterval
	}
	return &Trajectory{interval: interval}
}

// Record adds one latency observed at run-clock offset at.
func (t *Trajectory) Record(at time.Duration, lat time.Duration) {
	if at < 0 {
		at = 0
	}
	slot := int(at / t.interval)
	t.mu.Lock()
	defer t.mu.Unlock()
	for len(t.slots) <= slot {
		t.slots = append(t.slots, nil)
	}
	if t.slots[slot] == nil {
		t.slots[slot] = &histo{}
	}
	t.slots[slot].record(lat)
	t.overall.record(lat)
}

// Count reports total recorded observations.
func (t *Trajectory) Count() int64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.overall.count
}

// TrajPoint is one sampled interval of a latency trajectory.
type TrajPoint struct {
	// TSec is the interval's start offset from the run start, seconds.
	TSec float64 `json:"tSec"`
	// Count is the observations in the interval.
	Count int64 `json:"count"`
	// Percentiles and max over the interval, milliseconds.
	P50ms  float64 `json:"p50ms"`
	P99ms  float64 `json:"p99ms"`
	P999ms float64 `json:"p999ms"`
	MaxMs  float64 `json:"maxMs"`
}

// LatencyReport is a trajectory rendered for the run report: overall
// percentiles plus the per-interval trajectory.
type LatencyReport struct {
	Count      int64       `json:"count"`
	P50ms      float64     `json:"p50ms"`
	P99ms      float64     `json:"p99ms"`
	P999ms     float64     `json:"p999ms"`
	MaxMs      float64     `json:"maxMs"`
	Trajectory []TrajPoint `json:"trajectory"`
}

func ms(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }

// Report renders the trajectory.
func (t *Trajectory) Report() LatencyReport {
	t.mu.Lock()
	defer t.mu.Unlock()
	r := LatencyReport{
		Count:  t.overall.count,
		P50ms:  ms(t.overall.quantile(0.50)),
		P99ms:  ms(t.overall.quantile(0.99)),
		P999ms: ms(t.overall.quantile(0.999)),
		MaxMs:  ms(t.overall.max),
	}
	for i, h := range t.slots {
		if h == nil || h.count == 0 {
			continue
		}
		r.Trajectory = append(r.Trajectory, TrajPoint{
			TSec:   float64(time.Duration(i)*t.interval) / float64(time.Second),
			Count:  h.count,
			P50ms:  ms(h.quantile(0.50)),
			P99ms:  ms(h.quantile(0.99)),
			P999ms: ms(h.quantile(0.999)),
			MaxMs:  ms(h.max),
		})
	}
	return r
}

// P99 reports the overall p99 (the open-loop stall test's probe).
func (t *Trajectory) P99() time.Duration {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.overall.quantile(0.99)
}

// Package scenario is the declarative scenario harness (ROADMAP item 2):
// one JSON spec composes workload traces (Zipf skew, diurnal ramps,
// bursts, replay), a multi-tenant topology mix with QoS classes, a chaos
// plan, and a rescale schedule into a single reproducible run. The load
// generator is open-loop — send times come from the trace clock, never
// from completions — and every delivery carries its intended start time,
// so the exported latency trajectories are free of coordinated omission.
// Each run is gated on the conformance invariants (per-key no-loss/no-dup/
// FIFO, state integrity) and renders a BENCH_e2e.json report of p50/p99/
// p999 trajectories sampled over the run.
package scenario

import (
	"encoding/json"
	"fmt"
	"strings"
	"time"

	"typhoon/internal/chaos"
	"typhoon/internal/topology"
	"typhoon/internal/workload"
)

// Defaults applied by WithDefaults.
const (
	DefaultSampleInterval = time.Second
	DefaultDrainTimeout   = 30 * time.Second
	DefaultParallelism    = 2
)

// Node names inside every tenant pipeline. The tenant name rides after an
// "@" separator (components learn their tenant from their node name, the
// only identity the worker context exposes).
const (
	NodeSource = "src"
	NodeStage  = "count"
	NodeSink   = "sink"
)

// ClusterSpec hints how to build a cluster for standalone runs (the soak
// test and in-process harnesses). The HTTP path ignores it — there the
// scenario runs on the already-running cluster.
type ClusterSpec struct {
	// Hosts is the emulated host count (named h1..hN).
	Hosts int `json:"hosts,omitempty"`
	// QoS enables the multi-tenant QoS data plane.
	QoS bool `json:"qos,omitempty"`
}

// TenantSpec is one tenant: an isolated source→stage→sink pipeline driven
// by its own trace, optionally rate-classed under QoS.
type TenantSpec struct {
	// Name identifies the tenant; it becomes topology "scn-<name>" and
	// must not contain "@" or "/".
	Name string `json:"name"`
	// Class/RateBps set the topology's QoS class (guaranteed, burstable,
	// best-effort) and configured rate; empty leaves QoS unset.
	Class   string `json:"class,omitempty"`
	RateBps uint64 `json:"rateBps,omitempty"`
	// Parallelism is the stateful stage's instance count (default 2).
	Parallelism int `json:"parallelism,omitempty"`
	// Trace drives the tenant's open-loop load. A zero trace seed is
	// filled deterministically from the run seed and tenant index.
	Trace workload.TraceSpec `json:"trace"`
}

// Topology is the tenant's topology name.
func (t TenantSpec) Topology() string { return "scn-" + t.Name }

// ChaosEvent schedules one fault relative to the run start. Worker-
// targeted kinds (crash, hang, slow, port-down) name a Tenant and Node;
// the concrete worker is resolved at fire time from the live placement.
type ChaosEvent struct {
	// After offsets the first firing from the run start.
	After workload.Duration `json:"after"`
	// Repeat re-fires the event every interval until the run ends
	// (zero fires once).
	Repeat workload.Duration `json:"repeat,omitempty"`
	// Kind is the chaos fault kind (chaos.Kind catalogue).
	Kind string `json:"kind"`

	// Tenant/Node select a worker for worker-targeted kinds; Node is one
	// of src, count, sink (default count).
	Tenant string `json:"tenant,omitempty"`
	Node   string `json:"node,omitempty"`

	// Host/Peer select a host or link for fabric-targeted kinds.
	Host string `json:"host,omitempty"`
	Peer string `json:"peer,omitempty"`

	// Duration bounds the fault window (partition, hang, outage).
	Duration workload.Duration `json:"duration,omitempty"`
	// Netem knobs.
	DropRate float64           `json:"dropRate,omitempty"`
	Latency  workload.Duration `json:"latency,omitempty"`
	Jitter   workload.Duration `json:"jitter,omitempty"`
	// Delay is the per-operation delay (slow, packet-out-delay).
	Delay workload.Duration `json:"delay,omitempty"`
	// Controller selects a replicated controller instance (controller-kill).
	Controller string `json:"controller,omitempty"`
}

// workerTargeted reports whether the kind selects a Tenant/Node worker.
func (e ChaosEvent) workerTargeted() bool {
	switch chaos.Kind(e.Kind) {
	case chaos.KindPortDown, chaos.KindWorkerCrash, chaos.KindWorkerHang, chaos.KindWorkerSlow:
		return true
	}
	return false
}

// lossy reports whether the kind can drop tuples, which strict (no-loss)
// runs must reject. Hangs, slowdowns, and control-plane impairments stall
// or reroute but never lose frames on the paper's protocol.
func (e ChaosEvent) lossy() bool {
	switch chaos.Kind(e.Kind) {
	case chaos.KindPartition, chaos.KindPortDown, chaos.KindWipeFlows, chaos.KindWorkerCrash:
		return true
	case chaos.KindNetem:
		return e.DropRate > 0
	}
	return false
}

// spec renders the event as a chaos.Spec; worker-targeted kinds still
// carry a zero Worker ID (the runner fills it from the live placement).
func (e ChaosEvent) spec() chaos.Spec {
	s := chaos.Spec{
		Kind:       chaos.Kind(e.Kind),
		Host:       e.Host,
		Peer:       e.Peer,
		Duration:   e.Duration.D(),
		DropRate:   e.DropRate,
		Latency:    e.Latency.D(),
		Jitter:     e.Jitter.D(),
		Delay:      e.Delay.D(),
		Controller: e.Controller,
	}
	if e.workerTargeted() {
		s.Topo = "scn-" + e.Tenant
	}
	return s
}

// RescaleStep schedules one managed stable rescale (§3.5).
type RescaleStep struct {
	// After offsets the rescale from the run start.
	After workload.Duration `json:"after"`
	// Tenant names the pipeline to rescale.
	Tenant string `json:"tenant"`
	// Node is the logical node (default the stateful stage).
	Node string `json:"node,omitempty"`
	// Parallelism is the target instance count.
	Parallelism int `json:"parallelism"`
}

// Spec is one complete scenario.
type Spec struct {
	// Name labels the run and its report.
	Name string `json:"name"`
	// Seed makes the run reproducible: it derives tenant trace seeds and
	// the chaos target-selection stream.
	Seed int64 `json:"seed"`
	// Duration is how long the traces play (the run adds a drain phase).
	Duration workload.Duration `json:"duration"`
	// SampleInterval is the latency-trajectory bucket width (default 1s).
	SampleInterval workload.Duration `json:"sampleInterval,omitempty"`
	// Relaxed tolerates tuple loss (chaos soaks under at-most-once
	// delivery); duplication, reordering, and state corruption remain
	// violations. Strict runs additionally require zero loss and reject
	// loss-inducing chaos kinds at validation.
	Relaxed bool `json:"relaxed,omitempty"`
	// DrainTimeout bounds the post-play drain (default 30s).
	DrainTimeout workload.Duration `json:"drainTimeout,omitempty"`
	// Cluster hints standalone harnesses; ignored over HTTP.
	Cluster *ClusterSpec `json:"cluster,omitempty"`

	Tenants  []TenantSpec  `json:"tenants"`
	Chaos    []ChaosEvent  `json:"chaos,omitempty"`
	Rescales []RescaleStep `json:"rescales,omitempty"`
}

// ParseSpec decodes and normalizes a scenario spec, rejecting unknown
// fields so typos in hand-written files fail loudly.
func ParseSpec(raw []byte) (Spec, error) {
	var s Spec
	dec := json.NewDecoder(strings.NewReader(string(raw)))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&s); err != nil {
		return Spec{}, fmt.Errorf("scenario: bad spec: %w", err)
	}
	s = s.WithDefaults()
	if err := s.Validate(); err != nil {
		return Spec{}, err
	}
	return s, nil
}

// WithDefaults fills unset knobs, including deterministic per-tenant
// trace seeds derived from the run seed.
func (s Spec) WithDefaults() Spec {
	if s.Name == "" {
		s.Name = "scenario"
	}
	if s.SampleInterval <= 0 {
		s.SampleInterval = workload.Duration(DefaultSampleInterval)
	}
	if s.DrainTimeout <= 0 {
		s.DrainTimeout = workload.Duration(DefaultDrainTimeout)
	}
	tenants := append([]TenantSpec(nil), s.Tenants...)
	for i := range tenants {
		if tenants[i].Parallelism <= 0 {
			tenants[i].Parallelism = DefaultParallelism
		}
		if tenants[i].Trace.Seed == 0 {
			tenants[i].Trace.Seed = s.Seed + int64(i+1)*7919
		}
	}
	s.Tenants = tenants
	chaosEvents := append([]ChaosEvent(nil), s.Chaos...)
	for i := range chaosEvents {
		if chaosEvents[i].workerTargeted() && chaosEvents[i].Node == "" {
			chaosEvents[i].Node = NodeStage
		}
	}
	s.Chaos = chaosEvents
	rescales := append([]RescaleStep(nil), s.Rescales...)
	for i := range rescales {
		if rescales[i].Node == "" {
			rescales[i].Node = NodeStage
		}
	}
	s.Rescales = rescales
	return s
}

// Validate checks the normalized spec is runnable.
func (s Spec) Validate() error {
	if s.Duration <= 0 {
		return fmt.Errorf("scenario: duration must be positive")
	}
	if len(s.Tenants) == 0 {
		return fmt.Errorf("scenario: at least one tenant required")
	}
	names := make(map[string]bool, len(s.Tenants))
	for i, t := range s.Tenants {
		if t.Name == "" || strings.ContainsAny(t.Name, "@/ ") {
			return fmt.Errorf("scenario: tenant %d needs a name without '@', '/' or spaces", i)
		}
		if names[t.Name] {
			return fmt.Errorf("scenario: duplicate tenant %q", t.Name)
		}
		names[t.Name] = true
		if t.Class != "" && !topology.ValidQoSClass(t.Class) {
			return fmt.Errorf("scenario: tenant %s: unknown QoS class %q", t.Name, t.Class)
		}
		if err := t.Trace.Validate(); err != nil {
			return fmt.Errorf("scenario: tenant %s: %w", t.Name, err)
		}
	}
	validNode := func(n string) bool {
		return n == NodeSource || n == NodeStage || n == NodeSink
	}
	for i, e := range s.Chaos {
		if e.After < 0 || e.Repeat < 0 {
			return fmt.Errorf("scenario: chaos %d has a negative schedule field", i)
		}
		if e.workerTargeted() {
			if !names[e.Tenant] {
				return fmt.Errorf("scenario: chaos %d (%s) targets unknown tenant %q", i, e.Kind, e.Tenant)
			}
			if !validNode(e.Node) {
				return fmt.Errorf("scenario: chaos %d (%s): node must be %s, %s, or %s", i, e.Kind, NodeSource, NodeStage, NodeSink)
			}
		}
		if !s.Relaxed && e.lossy() {
			return fmt.Errorf("scenario: chaos %d (%s) can drop tuples; strict runs reject it (set relaxed)", i, e.Kind)
		}
		// Validate the rendered chaos.Spec with a placeholder worker ID;
		// the real ID is resolved from the live placement at fire time.
		cs := e.spec()
		if e.workerTargeted() {
			cs.Worker = 1
		}
		if err := cs.Validate(); err != nil {
			return fmt.Errorf("scenario: chaos %d: %w", i, err)
		}
	}
	for i, r := range s.Rescales {
		if r.After < 0 {
			return fmt.Errorf("scenario: rescale %d has a negative offset", i)
		}
		if !names[r.Tenant] {
			return fmt.Errorf("scenario: rescale %d targets unknown tenant %q", i, r.Tenant)
		}
		if r.Node != NodeStage {
			return fmt.Errorf("scenario: rescale %d: only the stateful %q node rescales", i, NodeStage)
		}
		if r.Parallelism < 1 {
			return fmt.Errorf("scenario: rescale %d needs parallelism >= 1", i)
		}
	}
	return nil
}

package scenario

import (
	"fmt"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"typhoon/internal/conformance/stream"
	"typhoon/internal/tuple"
	"typhoon/internal/worker"
	"typhoon/internal/workload"
)

// EnvRun is the shared-environment key holding the active *runState.
const EnvRun = "scenario.run"

// Logic names registered by this package.
const (
	LogicOpenLoopSource = "scenario/open-loop-source"
	LogicKeyedStage     = "scenario/keyed-stage"
	LogicLatencySink    = "scenario/latency-sink"
)

func init() {
	worker.RegisterLogic(LogicOpenLoopSource, func() worker.Component { return &OpenLoopSource{} })
	worker.RegisterLogic(LogicKeyedStage, func() worker.Component { return &KeyedStage{} })
	worker.RegisterLogic(LogicLatencySink, func() worker.Component { return &LatencySink{} })
}

// runState is one scenario's shared run state: the trace clock epoch and the
// per-tenant generators, checkers, and trajectories. It lives in the
// cluster's SharedEnv so components survive worker restarts without
// losing run state — a crashed source resumes the trace where the old
// instance left off instead of replaying it.
type runState struct {
	spec Spec
	// epoch is the trace clock's zero as unix nanoseconds; 0 means not
	// yet armed, and sources idle until it is. The runner arms it after
	// every tenant topology is submitted and ready, so all traces share
	// one consistent clock.
	epoch   atomic.Int64
	tenants map[string]*tenantState
}

// newRunState builds the run state for a normalized spec.
func newRunState(spec Spec) (*runState, error) {
	r := &runState{spec: spec, tenants: make(map[string]*tenantState, len(spec.Tenants))}
	for _, ts := range spec.Tenants {
		tr, err := workload.NewTrace(ts.Trace)
		if err != nil {
			return nil, fmt.Errorf("scenario: tenant %s: %w", ts.Name, err)
		}
		r.tenants[ts.Name] = &tenantState{
			spec:    ts,
			trace:   tr,
			playFor: spec.Duration.D(),
			checker: stream.New(!spec.Relaxed, false),
			open:    NewTrajectory(spec.SampleInterval.D()),
			closed:  NewTrajectory(spec.SampleInterval.D()),
			emitted: make(map[string]int64),
		}
	}
	return r, nil
}

// Arm starts the trace clock at epoch.
func (r *runState) Arm(epoch time.Time) { r.epoch.Store(epoch.UnixNano()) }

// Epoch returns the armed trace clock zero (zero time when unarmed).
func (r *runState) Epoch() time.Time {
	n := r.epoch.Load()
	if n == 0 {
		return time.Time{}
	}
	return time.Unix(0, n)
}

// tenant returns a tenant's run state, or nil.
func (r *runState) tenant(name string) *tenantState { return r.tenants[name] }

// tenantState is one tenant's live run state.
type tenantState struct {
	spec    TenantSpec
	playFor time.Duration
	checker *stream.Checker
	open    *Trajectory // intended-start (open-loop) latency
	closed  *Trajectory // send-stamped (closed-loop) latency

	mu      sync.Mutex
	trace   *workload.Trace
	pending *workload.TraceEvent // generated but not yet due
	done    bool                 // trace exhausted or past playFor
	emitted map[string]int64     // per-key emitted high-water mark
	nsent   int64
}

// Checker exposes the tenant's conformance checker.
func (t *tenantState) Checker() *stream.Checker { return t.checker }

// OpenLoop exposes the intended-start latency trajectory.
func (t *tenantState) OpenLoop() *Trajectory { return t.open }

// ClosedLoop exposes the send-stamped latency trajectory.
func (t *tenantState) ClosedLoop() *Trajectory { return t.closed }

// SourceDone reports whether the tenant's trace has finished playing.
func (t *tenantState) SourceDone() bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.done
}

// Emitted snapshots the per-key emitted counts and their total.
func (t *tenantState) Emitted() (map[string]int64, int64) {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make(map[string]int64, len(t.emitted))
	var total int64
	for k, n := range t.emitted {
		out[k] = n
		total += n
	}
	return out, total
}

// next hands the source its next due event under the trace clock: ok only
// when an event's intended time has arrived. Events are consumed exactly
// once even across source restarts — the cursor lives here, not in the
// component.
func (t *tenantState) next(elapsed time.Duration) (workload.TraceEvent, bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.done {
		return workload.TraceEvent{}, false
	}
	if t.pending == nil {
		ev, ok := t.trace.Next()
		if !ok || ev.At >= t.playFor {
			t.done = true
			return workload.TraceEvent{}, false
		}
		t.pending = &ev
	}
	if t.pending.At > elapsed {
		return workload.TraceEvent{}, false
	}
	ev := *t.pending
	t.pending = nil
	t.emitted[ev.Key] = ev.Seq
	t.nsent++
	return ev, true
}

// tenantOf resolves a component's tenant state from its node name
// ("src@alpha"): the worker context exposes the node name but not the
// topology, so the tenant rides after the "@".
func tenantOf(ctx *worker.Context) (*runState, *tenantState, error) {
	env := ctx.Env()
	if env == nil {
		return nil, nil, fmt.Errorf("scenario: no shared environment")
	}
	run, _ := env.Get(EnvRun).(*runState)
	if run == nil {
		return nil, nil, fmt.Errorf("scenario: no active run in environment")
	}
	_, name, ok := strings.Cut(ctx.Node(), "@")
	if !ok {
		return nil, nil, fmt.Errorf("scenario: node %q carries no tenant suffix", ctx.Node())
	}
	t := run.tenant(name)
	if t == nil {
		return nil, nil, fmt.Errorf("scenario: unknown tenant %q", name)
	}
	return run, t, nil
}

// OpenLoopSource plays a tenant's trace open-loop: each event is emitted
// when the trace clock says so, never when the pipeline finishes prior
// work. When the pipeline (or this very worker) stalls, overdue events
// burst out on recovery with their original intended times attached — the
// stall is visible in the intended-start latency instead of silently
// thinning the load, which is exactly the coordinated-omission fix.
//
// Emitted fields: key, seq, intended start (unix ns), actual send (unix ns).
type OpenLoopSource struct {
	run    *runState
	tenant *tenantState
}

// Open implements worker.Component.
func (s *OpenLoopSource) Open(ctx *worker.Context) error {
	var err error
	s.run, s.tenant, err = tenantOf(ctx)
	return err
}

// Close implements worker.Component.
func (s *OpenLoopSource) Close(*worker.Context) error { return nil }

// Next implements worker.Spout.
func (s *OpenLoopSource) Next(ctx *worker.Context) (bool, error) {
	epoch := s.run.epoch.Load()
	if epoch == 0 {
		return false, nil // clock not armed yet; the worker loop backs off
	}
	now := time.Now().UnixNano()
	ev, ok := s.tenant.next(time.Duration(now - epoch))
	if !ok {
		return false, nil
	}
	intended := epoch + int64(ev.At)
	ctx.Emit(tuple.String(ev.Key), tuple.Int(ev.Seq), tuple.Int(intended), tuple.Int(time.Now().UnixNano()))
	return true, nil
}

// KeyedStage is the stateful stage under chaos and rescale: per-key
// running counts carried as migratable state, forwarded for the sink's
// state-integrity check. After a crash restart the counts restart empty;
// the checker's CounterMismatch separates tolerated forward gaps (drops,
// relaxed mode) from replays and corruption, which are always violations.
type KeyedStage struct {
	tenant *tenantState
	counts map[string]int64
}

// Open implements worker.Component.
func (k *KeyedStage) Open(ctx *worker.Context) error {
	var err error
	_, k.tenant, err = tenantOf(ctx)
	k.counts = make(map[string]int64)
	return err
}

// Close implements worker.Component.
func (k *KeyedStage) Close(*worker.Context) error { return nil }

// Execute implements worker.Bolt.
func (k *KeyedStage) Execute(ctx *worker.Context, in tuple.Tuple) error {
	if in.Stream.IsSignal() {
		return nil
	}
	key := in.Field(0).AsString()
	seq := in.Field(1).AsInt()
	if want := k.counts[key] + 1; seq != want && k.counts[key] != 0 {
		// A fresh instance (restart or migrated-in key) starts blind at
		// 0; only a tracked key's discontinuity is reportable.
		k.tenant.checker.CounterMismatch(key, seq, want)
	}
	k.counts[key] = seq
	ctx.Emit(in.Field(0), in.Field(1), in.Field(2), in.Field(3), tuple.Int(k.counts[key]))
	return nil
}

// SnapshotState implements worker.StatefulComponent.
func (k *KeyedStage) SnapshotState(_ *worker.Context, r worker.KeyRange) (map[string][]byte, error) {
	out := make(map[string][]byte)
	for key, n := range k.counts {
		if r.Contains(worker.PartitionOfKey(key)) {
			out[key] = []byte(strconv.FormatInt(n, 10))
		}
	}
	return out, nil
}

// RestoreState implements worker.StatefulComponent (replace semantics).
func (k *KeyedStage) RestoreState(_ *worker.Context, state map[string][]byte) error {
	counts := make(map[string]int64, len(state))
	for key, blob := range state {
		n, err := strconv.ParseInt(string(blob), 10, 64)
		if err != nil {
			return fmt.Errorf("scenario: bad count for %q: %w", key, err)
		}
		counts[key] = n
	}
	k.counts = counts
	return nil
}

// LatencySink terminates a tenant pipeline: every delivery feeds the
// conformance checker and both latency trajectories. Open-loop latency is
// arrival minus the intended start from the trace clock; closed-loop is
// arrival minus the actual send stamp — the number a completion-paced
// harness would report, recorded side by side to expose the gap.
// Parallelism must be 1 so the checker observes one global arrival order.
type LatencySink struct {
	run    *runState
	tenant *tenantState
}

// Open implements worker.Component.
func (s *LatencySink) Open(ctx *worker.Context) error {
	var err error
	s.run, s.tenant, err = tenantOf(ctx)
	return err
}

// Close implements worker.Component.
func (s *LatencySink) Close(*worker.Context) error { return nil }

// Execute implements worker.Bolt.
func (s *LatencySink) Execute(_ *worker.Context, in tuple.Tuple) error {
	if in.Stream.IsSignal() {
		return nil
	}
	key := in.Field(0).AsString()
	seq := in.Field(1).AsInt()
	intended := in.Field(2).AsInt()
	sent := in.Field(3).AsInt()
	count := in.Field(4).AsInt()
	now := time.Now().UnixNano()
	if s.tenant.checker.Observe(key, seq, count) {
		at := time.Duration(intended - s.run.epoch.Load())
		s.tenant.open.Record(at, time.Duration(now-intended))
		s.tenant.closed.Record(at, time.Duration(now-sent))
	}
	return nil
}

package workload

import (
	"encoding/json"
	"testing"
	"time"

	"typhoon/internal/kafkasim"
	"typhoon/internal/kvstore"
	"typhoon/internal/tuple"
	"typhoon/internal/worker"
)

// captureEmitter records emissions.
type captureEmitter struct{ out []tuple.Tuple }

func (c *captureEmitter) Emit(values ...tuple.Value) { c.EmitOn(tuple.DefaultStream, values...) }
func (c *captureEmitter) EmitOn(s tuple.StreamID, values ...tuple.Value) {
	c.out = append(c.out, tuple.OnStream(s, values...))
}

func newCtx(t *testing.T, id uint32, node string, env *worker.SharedEnv) (*worker.Context, *captureEmitter) {
	t.Helper()
	cap := &captureEmitter{}
	return worker.NewContext(cap, id, node, 0, env), cap
}

func baseEnv(stats *Stats, cfg *Config) *worker.SharedEnv {
	env := worker.NewSharedEnv()
	if stats != nil {
		env.Set(EnvStats, stats)
	}
	if cfg != nil {
		env.Set(EnvConfig, cfg)
	}
	return env
}

func TestSplitterSplitsSentences(t *testing.T) {
	env := baseEnv(NewStats(time.Second), NewConfig())
	ctx, cap := newCtx(t, 1, "split", env)
	s := &Splitter{}
	if err := s.Open(ctx); err != nil {
		t.Fatal(err)
	}
	if err := s.Execute(ctx, tuple.New(tuple.String("a b c"))); err != nil {
		t.Fatal(err)
	}
	if len(cap.out) != 3 || cap.out[0].Field(0).AsString() != "a" {
		t.Fatalf("out = %v", cap.out)
	}
	// Signals pass through without splitting.
	if err := s.Execute(ctx, tuple.OnStream(tuple.SignalStream)); err != nil {
		t.Fatal(err)
	}
	if len(cap.out) != 3 {
		t.Fatal("signal produced output")
	}
}

func TestCounterFlushesOnSignal(t *testing.T) {
	stats := NewStats(time.Second)
	env := baseEnv(stats, NewConfig())
	ctx, cap := newCtx(t, 2, "count", env)
	c := &Counter{}
	if err := c.Open(ctx); err != nil {
		t.Fatal(err)
	}
	for _, w := range []string{"x", "y", "x"} {
		c.Execute(ctx, tuple.New(tuple.String(w)))
	}
	if c.CacheSize() != 2 || len(cap.out) != 0 {
		t.Fatalf("cache=%d out=%d", c.CacheSize(), len(cap.out))
	}
	// The Listing 2 pattern: SIGNAL flushes the in-memory cache.
	c.Execute(ctx, tuple.OnStream(tuple.SignalStream))
	if c.CacheSize() != 0 || len(cap.out) != 2 {
		t.Fatalf("after signal: cache=%d out=%d", c.CacheSize(), len(cap.out))
	}
	counts := map[string]int64{}
	for _, o := range cap.out {
		counts[o.Field(0).AsString()] = o.Field(1).AsInt()
	}
	if counts["x"] != 2 || counts["y"] != 1 {
		t.Fatalf("counts = %v", counts)
	}
	if stats.Counter("count.flushes").Value() != 1 {
		t.Fatal("flush not counted")
	}
}

func TestFaultySplitterArming(t *testing.T) {
	cfg := NewConfig()
	env := baseEnv(NewStats(time.Second), cfg)
	ctx, _ := newCtx(t, 3, "split", env)
	f := &FaultySplitter{}
	if err := f.Open(ctx); err != nil {
		t.Fatal(err)
	}
	if err := f.Execute(ctx, tuple.New(tuple.String("ok"))); err != nil {
		t.Fatal("disarmed splitter crashed")
	}
	cfg.Set(CfgFaultArmed, 1)
	cfg.Set(CfgFaultIndex, 0)
	if err := f.Execute(ctx, tuple.New(tuple.String("boom"))); err == nil {
		t.Fatal("armed splitter survived")
	}
	// Other instance indices are unaffected.
	cfg.Set(CfgFaultIndex, 5)
	if err := f.Execute(ctx, tuple.New(tuple.String("ok"))); err != nil {
		t.Fatal("wrong instance crashed")
	}
}

func TestSeqSourcePacingAndLimit(t *testing.T) {
	cfg := NewConfig()
	cfg.Set(CfgSeqLimit, 3)
	env := baseEnv(NewStats(time.Second), cfg)
	ctx, cap := newCtx(t, 4, "src", env)
	s := &SeqSource{}
	if err := s.Open(ctx); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		s.Next(ctx)
	}
	if len(cap.out) != 3 {
		t.Fatalf("limit not enforced: %d", len(cap.out))
	}
	for i, o := range cap.out {
		if o.Field(0).AsInt() != int64(i) {
			t.Fatalf("sequence broken at %d", i)
		}
	}
}

func TestSentenceSourceRateLimit(t *testing.T) {
	cfg := NewConfig()
	cfg.Set(CfgSourceRate, 100)
	env := baseEnv(NewStats(time.Second), cfg)
	ctx, cap := newCtx(t, 5, "src", env)
	s := &SentenceSource{}
	if err := s.Open(ctx); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(300 * time.Millisecond)
	for time.Now().Before(deadline) {
		s.Next(ctx)
	}
	// 100/s over 0.3s ≈ 30 tuples; allow generous slack.
	if n := len(cap.out); n < 10 || n > 80 {
		t.Fatalf("paced source emitted %d in 300ms", n)
	}
}

func TestSeqCheckerDetectsGaps(t *testing.T) {
	stats := NewStats(time.Second)
	env := baseEnv(stats, NewConfig())
	ctx, _ := newCtx(t, 6, "sink", env)
	c := &SeqChecker{}
	if err := c.Open(ctx); err != nil {
		t.Fatal(err)
	}
	for _, seq := range []int64{0, 1, 2, 5, 6} {
		c.Execute(ctx, tuple.New(tuple.Int(seq)))
	}
	if stats.Counter("seq.seen").Value() != 5 {
		t.Fatal("seen count")
	}
	if stats.Counter("seq.gaps").Value() != 1 {
		t.Fatalf("gaps = %d", stats.Counter("seq.gaps").Value())
	}
}

func TestTappableSourceEmitsDebugCopies(t *testing.T) {
	cfg := NewConfig()
	env := baseEnv(NewStats(time.Second), cfg)
	ctx, cap := newCtx(t, 7, "src", env)
	s := &TappableSeqSource{}
	if err := s.Open(ctx); err != nil {
		t.Fatal(err)
	}
	s.Next(ctx)
	if len(cap.out) != 1 {
		t.Fatalf("untapped emissions = %d", len(cap.out))
	}
	cfg.Set(CfgDebugTap, 1)
	// The tap flag is re-read every 512 tuples.
	for i := 0; i < 600; i++ {
		s.Next(ctx)
	}
	var tapped int
	for _, o := range cap.out {
		if o.Stream == DebugTapStream {
			tapped++
		}
	}
	if tapped == 0 {
		t.Fatal("no debug copies after arming the tap")
	}
}

// --- Yahoo pipeline components -------------------------------------------

func yahooEnv(t *testing.T) (*worker.SharedEnv, *kafkasim.Log, *kvstore.Store) {
	t.Helper()
	env := baseEnv(NewStats(time.Second), NewConfig())
	log := kafkasim.New(2)
	kv := kvstore.New()
	env.Set(EnvKafka, log)
	env.Set(EnvKV, kv)
	return env, log, kv
}

func TestYahooEndToEndComponents(t *testing.T) {
	env, log, kv := yahooEnv(t)
	gen := NewAdEventGen(1, 3, 2)
	gen.PrepopulateCampaigns(kv)
	now := time.Now()
	gen.Produce(log, 50, now)

	// Kafka client drains the log.
	kctx, kcap := newCtx(t, 1, "kafka", env)
	kc := &KafkaClient{}
	if err := kc.Open(kctx); err != nil {
		t.Fatal(err)
	}
	for {
		if did, _ := kc.Next(kctx); !did {
			break
		}
	}
	if len(kcap.out) != 50 {
		t.Fatalf("kafka emitted %d", len(kcap.out))
	}

	// Parse → filter(view) → projection → join → agg.
	pctx, pcap := newCtx(t, 2, "parse", env)
	p := &Parse{}
	p.Open(pctx)
	for _, raw := range kcap.out {
		p.Execute(pctx, raw)
	}
	if len(pcap.out) != 50 {
		t.Fatalf("parse emitted %d", len(pcap.out))
	}

	fctx, fcap := newCtx(t, 3, "filter", env)
	f := &Filter{allow: map[string]bool{"view": true}}
	f.Open(fctx)
	for _, tp := range pcap.out {
		f.Execute(fctx, tp)
	}
	if len(fcap.out) == 0 || len(fcap.out) >= 50 {
		t.Fatalf("filter passed %d of 50", len(fcap.out))
	}

	jctx, jcap := newCtx(t, 4, "join", env)
	j := &Join{}
	if err := j.Open(jctx); err != nil {
		t.Fatal(err)
	}
	proj := &Projection{}
	prctx, prcap := newCtx(t, 5, "projection", env)
	for _, tp := range fcap.out {
		proj.Execute(prctx, tp)
	}
	for _, tp := range prcap.out {
		j.Execute(jctx, tp)
	}
	if len(jcap.out) != len(fcap.out) {
		t.Fatalf("join emitted %d of %d", len(jcap.out), len(fcap.out))
	}

	actx, _ := newCtx(t, 6, "agg", env)
	a := &AggStore{}
	if err := a.Open(actx); err != nil {
		t.Fatal(err)
	}
	for _, tp := range jcap.out {
		a.Execute(actx, tp)
	}
	a.Execute(actx, tuple.OnStream(tuple.SignalStream)) // flush
	if kv.SumCounters("window:") != int64(len(jcap.out)) {
		t.Fatalf("windows hold %d of %d", kv.SumCounters("window:"), len(jcap.out))
	}
}

func TestParseDropsMalformedEvents(t *testing.T) {
	env, _, _ := yahooEnv(t)
	ctx, cap := newCtx(t, 1, "parse", env)
	p := &Parse{}
	p.Open(ctx)
	if err := p.Execute(ctx, tuple.New(tuple.Bytes([]byte("{nope")))); err != nil {
		t.Fatal("malformed input must not crash the worker")
	}
	if len(cap.out) != 0 {
		t.Fatal("malformed input produced output")
	}
}

func TestJoinMissesUnknownAds(t *testing.T) {
	env, _, _ := yahooEnv(t)
	ctx, cap := newCtx(t, 1, "join", env)
	j := &Join{}
	if err := j.Open(ctx); err != nil {
		t.Fatal(err)
	}
	j.Execute(ctx, tuple.New(tuple.String("ghost-ad"), tuple.Int(1)))
	if len(cap.out) != 0 {
		t.Fatal("unknown ad joined")
	}
}

func TestAdEventGenProducesValidJSON(t *testing.T) {
	gen := NewAdEventGen(7, 5, 4)
	var ev AdEvent
	if err := json.Unmarshal(gen.Next(time.Now()), &ev); err != nil {
		t.Fatal(err)
	}
	if ev.AdID == "" || ev.EventType == "" || ev.EventTime == 0 {
		t.Fatalf("event = %+v", ev)
	}
}

func TestStatsRegistry(t *testing.T) {
	s := NewStats(time.Second)
	s.Counter("a").Inc()
	if s.Counter("a").Value() != 1 {
		t.Fatal("counter identity")
	}
	s.Timeline("t").Add(time.Now(), 1)
	found := false
	for _, n := range s.Names() {
		if n == "t" {
			found = true
		}
	}
	if !found {
		t.Fatal("timeline not listed")
	}
}

func TestConfigDefaults(t *testing.T) {
	c := NewConfig()
	if c.Get("missing", 42) != 42 {
		t.Fatal("default not returned")
	}
	c.Set("k", 7)
	if c.Get("k", 0) != 7 {
		t.Fatal("set/get")
	}
}

// Package workload provides the computation logic, data generators and
// measurement hooks used by the evaluation harness: the word-count
// topology of Fig 2, the max-speed sequence source and checker of §6.1,
// fault-injecting variants for Figs 10 and 11, and the Yahoo advertisement
// analytics pipeline of Fig 13.
//
// All components communicate measurements through a Stats registry placed
// in the workers' shared environment, so experiments observe live behaviour
// without touching worker internals.
package workload

import (
	"fmt"
	"math/rand"
	"strings"
	"sync"
	"time"

	"typhoon/internal/metrics"
	"typhoon/internal/tuple"
	"typhoon/internal/worker"
)

// Shared environment keys.
const (
	// EnvStats holds the *Stats registry.
	EnvStats = "workload.stats"
	// EnvConfig holds a *Config with workload parameters.
	EnvConfig = "workload.config"
	// EnvKafka holds the *kafkasim.Log input of the Yahoo pipeline.
	EnvKafka = "yahoo.kafka"
	// EnvKV holds the *kvstore.Store of the Yahoo pipeline.
	EnvKV = "yahoo.kv"
)

// Logic names registered by this package.
const (
	LogicSeqSource      = "workload/seq-source"
	LogicSeqChecker     = "workload/seq-checker"
	LogicForwarder      = "workload/forwarder"
	LogicSentenceSource = "workload/sentence-source"
	LogicSplitter       = "workload/splitter"
	LogicFaultySplitter = "workload/faulty-splitter"
	LogicOOMSplitter    = "workload/oom-splitter"
	LogicCounter        = "workload/counter"
	LogicSink           = "workload/sink"
	LogicDebugSink      = "workload/debug-sink"
)

// Stats is the measurement registry shared between components and the
// experiment harness.
type Stats struct {
	mu        sync.Mutex
	counters  map[string]*metrics.Counter
	timelines map[string]*metrics.Timeline
	start     time.Time
	interval  time.Duration
}

// NewStats builds a registry whose timelines start now with the given
// bucket width (zero selects one second).
func NewStats(interval time.Duration) *Stats {
	return &Stats{
		counters:  make(map[string]*metrics.Counter),
		timelines: make(map[string]*metrics.Timeline),
		start:     time.Now(),
		interval:  interval,
	}
}

// Counter returns (creating if needed) a named counter.
func (s *Stats) Counter(name string) *metrics.Counter {
	s.mu.Lock()
	defer s.mu.Unlock()
	c := s.counters[name]
	if c == nil {
		c = &metrics.Counter{}
		s.counters[name] = c
	}
	return c
}

// Timeline returns (creating if needed) a named timeline.
func (s *Stats) Timeline(name string) *metrics.Timeline {
	s.mu.Lock()
	defer s.mu.Unlock()
	tl := s.timelines[name]
	if tl == nil {
		tl = metrics.NewTimeline(s.start, s.interval)
		s.timelines[name] = tl
	}
	return tl
}

// Names lists registered timeline names.
func (s *Stats) Names() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	var out []string
	for n := range s.timelines {
		out = append(out, n)
	}
	return out
}

// Config carries workload parameters components read at Open time.
type Config struct {
	mu sync.RWMutex
	m  map[string]int64
}

// NewConfig builds an empty config.
func NewConfig() *Config { return &Config{m: make(map[string]int64)} }

// Set stores a parameter.
func (c *Config) Set(key string, v int64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.m[key] = v
}

// Get reads a parameter with a default.
func (c *Config) Get(key string, def int64) int64 {
	c.mu.RLock()
	defer c.mu.RUnlock()
	if v, ok := c.m[key]; ok {
		return v
	}
	return def
}

// Config keys.
const (
	// CfgSeqLimit bounds SeqSource emission (0 = unlimited).
	CfgSeqLimit = "seq.limit"
	// CfgPayload is the extra payload bytes per sequence tuple.
	CfgPayload = "seq.payload"
	// CfgFaultIndex selects which faulty-splitter instance crashes.
	CfgFaultIndex = "fault.index"
	// CfgFaultArmed arms the faulty splitter (0 = disarmed).
	CfgFaultArmed = "fault.armed"
	// CfgOOMThreshold is the queue depth at which the OOM splitter dies.
	CfgOOMThreshold = "oom.threshold"
	// CfgWorkNanos is per-tuple busy work for splitters.
	CfgWorkNanos = "work.nanos"
	// CfgSkew selects skewed (1) vs uniform (0) word distribution.
	CfgSkew = "words.skew"
	// CfgSourceRate paces the sentence source (tuples/s per instance);
	// zero emits at maximum speed. Controlled-rate experiments (Figs 10,
	// 11) use it so effects are visible as loss and queueing rather than
	// CPU contention.
	CfgSourceRate = "source.rate"
	// CfgDebugTap arms the baseline's pre-provisioned debug stream: the
	// tappable source emits every tuple a second time on DebugTapStream,
	// paying the extra application-level serialization Typhoon avoids
	// (Fig 12, Table 5).
	CfgDebugTap = "debug.tap"
)

// DebugTapStream carries the baseline's debug copies.
const DebugTapStream tuple.StreamID = 9

// LogicTappableSeqSource is SeqSource plus the baseline debug tap.
const LogicTappableSeqSource = "workload/tappable-seq-source"

func env(ctx *worker.Context) (*Stats, *Config) {
	var st *Stats
	var cf *Config
	if e := ctx.Env(); e != nil {
		st, _ = e.Get(EnvStats).(*Stats)
		cf, _ = e.Get(EnvConfig).(*Config)
	}
	if st == nil {
		st = NewStats(time.Second)
	}
	if cf == nil {
		cf = NewConfig()
	}
	return st, cf
}

func init() {
	worker.RegisterLogic(LogicSeqSource, func() worker.Component { return &SeqSource{} })
	worker.RegisterLogic(LogicSeqChecker, func() worker.Component { return &SeqChecker{} })
	worker.RegisterLogic(LogicForwarder, func() worker.Component { return &Forwarder{} })
	worker.RegisterLogic(LogicSentenceSource, func() worker.Component { return &SentenceSource{} })
	worker.RegisterLogic(LogicSplitter, func() worker.Component { return &Splitter{} })
	worker.RegisterLogic(LogicFaultySplitter, func() worker.Component { return &FaultySplitter{} })
	worker.RegisterLogic(LogicOOMSplitter, func() worker.Component { return &OOMSplitter{} })
	worker.RegisterLogic(LogicCounter, func() worker.Component { return &Counter{} })
	worker.RegisterLogic(LogicSink, func() worker.Component { return &Sink{} })
	worker.RegisterLogic(LogicDebugSink, func() worker.Component { return &DebugSink{} })
	worker.RegisterLogic(LogicTappableSeqSource, func() worker.Component { return &TappableSeqSource{} })
}

// TappableSeqSource emits sequence tuples and, when the debug tap is
// armed, re-emits each tuple on DebugTapStream — the baseline live-debug
// mechanism whose serialization cost Fig 12 measures.
type TappableSeqSource struct {
	SeqSource
	tap      bool
	sinceChk int
}

// Next implements worker.Spout.
func (s *TappableSeqSource) Next(ctx *worker.Context) (bool, error) {
	if s.limit > 0 && s.n >= s.limit {
		return false, nil
	}
	// Re-read the tap flag occasionally; per-tuple config reads would
	// distort the throughput both systems share.
	if s.sinceChk == 0 {
		s.tap = s.cfg.Get(CfgDebugTap, 0) != 0
		s.sinceChk = 512
	}
	s.sinceChk--
	ctx.Emit(tuple.Int(s.n), tuple.String(s.payload))
	if s.tap {
		ctx.EmitOn(DebugTapStream, tuple.Int(s.n), tuple.String(s.payload))
	}
	s.n++
	s.stats.Counter("emitted/" + s.name).Inc()
	return true, nil
}

// SeqSource emits (sequence, payload) tuples at maximum speed — the
// forwarding workload of Fig 8.
type SeqSource struct {
	stats   *Stats
	cfg     *Config
	n       int64
	limit   int64
	payload string
	name    string
}

// Open implements worker.Component.
func (s *SeqSource) Open(ctx *worker.Context) error {
	s.stats, s.cfg = env(ctx)
	s.limit = s.cfg.Get(CfgSeqLimit, 0)
	if n := s.cfg.Get(CfgPayload, 16); n > 0 {
		s.payload = strings.Repeat("x", int(n))
	}
	s.name = fmt.Sprintf("src/%d", ctx.WorkerID())
	return nil
}

// Close implements worker.Component.
func (s *SeqSource) Close(*worker.Context) error { return nil }

// Next implements worker.Spout.
func (s *SeqSource) Next(ctx *worker.Context) (bool, error) {
	if s.limit > 0 && s.n >= s.limit {
		return false, nil
	}
	ctx.Emit(tuple.Int(s.n), tuple.String(s.payload))
	s.n++
	s.stats.Counter("emitted/" + s.name).Inc()
	return true, nil
}

// SeqChecker is the sink of §6.1's forwarding experiment: it verifies
// sequence numbers and records per-second throughput.
type SeqChecker struct {
	stats *Stats
	tl    *metrics.Timeline
	last  int64
	gaps  *metrics.Counter
	seen  *metrics.Counter
}

// Open implements worker.Component.
func (s *SeqChecker) Open(ctx *worker.Context) error {
	s.stats, _ = env(ctx)
	s.tl = s.stats.Timeline(fmt.Sprintf("sink/%d", ctx.WorkerID()))
	s.gaps = s.stats.Counter("seq.gaps")
	s.seen = s.stats.Counter("seq.seen")
	s.last = -1
	return nil
}

// Close implements worker.Component.
func (s *SeqChecker) Close(*worker.Context) error { return nil }

// Execute implements worker.Bolt.
func (s *SeqChecker) Execute(_ *worker.Context, in tuple.Tuple) error {
	if in.Stream.IsSignal() {
		return nil
	}
	seq := in.Field(0).AsInt()
	if s.last >= 0 && seq != s.last+1 {
		s.gaps.Inc()
	}
	s.last = seq
	s.seen.Inc()
	s.tl.Add(time.Now(), 1)
	return nil
}

// Forwarder re-emits its input downstream (intermediate hop). It counts
// into the shared stats registry so its throughput survives worker
// removal during reconfiguration experiments.
type Forwarder struct {
	total *metrics.Counter
}

// Open implements worker.Component.
func (f *Forwarder) Open(ctx *worker.Context) error {
	st, _ := env(ctx)
	f.total = st.Counter("forward.total")
	return nil
}

// Close implements worker.Component.
func (f *Forwarder) Close(*worker.Context) error { return nil }

// Execute implements worker.Bolt.
func (f *Forwarder) Execute(ctx *worker.Context, in tuple.Tuple) error {
	if in.Stream.IsSignal() {
		return nil
	}
	f.total.Inc()
	ctx.Emit(in.Values...)
	return nil
}

// dictionary is the word-count vocabulary; the first entries dominate
// under a skewed (Zipf-like) distribution.
var dictionary = []string{
	"the", "quick", "brown", "fox", "jumps", "over", "lazy", "dog",
	"storm", "typhoon", "stream", "tuple", "switch", "flow", "rule",
	"packet", "worker", "topology", "controller", "pipeline",
}

// SentenceSource emits random sentences (the word-count input of Fig 2);
// skew concentrates words on the head of the dictionary, the condition
// that imbalances key-based routing (§2).
type SentenceSource struct {
	stats *Stats
	cfg   *Config
	rng   *rand.Rand
	zipf  *rand.Zipf
	name  string

	// Pacing state (CfgSourceRate).
	rate     float64
	nextAt   time.Time
	sinceChk int
}

// Open implements worker.Component.
func (s *SentenceSource) Open(ctx *worker.Context) error {
	s.stats, s.cfg = env(ctx)
	s.rng = rand.New(rand.NewSource(int64(ctx.WorkerID()) + 7))
	if s.cfg.Get(CfgSkew, 0) != 0 {
		s.zipf = rand.NewZipf(s.rng, 1.5, 1, uint64(len(dictionary)-1))
	}
	s.name = fmt.Sprintf("src/%d", ctx.WorkerID())
	s.rate = float64(s.cfg.Get(CfgSourceRate, 0))
	s.nextAt = time.Now()
	return nil
}

// Close implements worker.Component.
func (s *SentenceSource) Close(*worker.Context) error { return nil }

// Next implements worker.Spout.
func (s *SentenceSource) Next(ctx *worker.Context) (bool, error) {
	if s.sinceChk == 0 {
		s.rate = float64(s.cfg.Get(CfgSourceRate, 0))
		s.sinceChk = 256
	}
	s.sinceChk--
	if s.rate > 0 {
		now := time.Now()
		if now.Before(s.nextAt) {
			return false, nil // throttled; the worker loop backs off
		}
		s.nextAt = s.nextAt.Add(time.Duration(float64(time.Second) / s.rate))
		if now.Sub(s.nextAt) > 100*time.Millisecond {
			s.nextAt = now // bound catch-up bursts after stalls
		}
	}
	words := make([]string, 0, 8)
	n := 3 + s.rng.Intn(6)
	for i := 0; i < n; i++ {
		var idx int
		if s.zipf != nil {
			idx = int(s.zipf.Uint64())
		} else {
			idx = s.rng.Intn(len(dictionary))
		}
		words = append(words, dictionary[idx])
	}
	ctx.Emit(tuple.String(strings.Join(words, " ")))
	s.stats.Counter("emitted/" + s.name).Inc()
	return true, nil
}

// Splitter splits sentences into words (Fig 2).
type Splitter struct {
	stats *Stats
	cfg   *Config
	tl    *metrics.Timeline
	work  time.Duration
}

// Open implements worker.Component.
func (s *Splitter) Open(ctx *worker.Context) error {
	s.stats, s.cfg = env(ctx)
	s.tl = s.stats.Timeline(fmt.Sprintf("split/%d", ctx.WorkerID()))
	s.work = time.Duration(s.cfg.Get(CfgWorkNanos, 0))
	return nil
}

// Close implements worker.Component.
func (s *Splitter) Close(*worker.Context) error { return nil }

// Execute implements worker.Bolt.
func (s *Splitter) Execute(ctx *worker.Context, in tuple.Tuple) error {
	if in.Stream.IsSignal() {
		return nil
	}
	if s.work > 0 {
		// Per-tuple service time. A sleep (rather than a busy spin) keeps
		// the model meaningful on small machines: a worker's service rate
		// is 1/work regardless of how many workers share a core, so
		// queueing behaviour matches the paper's multi-core testbed.
		time.Sleep(s.work)
	}
	for _, w := range strings.Fields(in.Field(0).AsString()) {
		ctx.Emit(tuple.String(w))
	}
	s.tl.Add(time.Now(), 1)
	return nil
}

// FaultySplitter behaves like Splitter until armed, then the selected
// instance crashes on its next tuple — the injected NullPointerException
// of Fig 10.
type FaultySplitter struct {
	Splitter
	index int
}

// Open implements worker.Component.
func (f *FaultySplitter) Open(ctx *worker.Context) error {
	f.index = ctx.Index()
	return f.Splitter.Open(ctx)
}

// Execute implements worker.Bolt.
func (f *FaultySplitter) Execute(ctx *worker.Context, in tuple.Tuple) error {
	if f.cfg.Get(CfgFaultArmed, 0) != 0 && int64(f.index) == f.cfg.Get(CfgFaultIndex, 0) {
		return fmt.Errorf("workload: injected NullPointerException in split[%d]", f.index)
	}
	return f.Splitter.Execute(ctx, in)
}

// OOMSplitter crashes with an OutOfMemoryError analogue when its input
// backlog exceeds a threshold — the overload failure of Fig 11(a). With
// the auto-scaler keeping queues short, it never dies (Fig 11(b)).
type OOMSplitter struct {
	Splitter
	threshold int
}

// Open implements worker.Component.
func (o *OOMSplitter) Open(ctx *worker.Context) error {
	if err := o.Splitter.Open(ctx); err != nil {
		return err
	}
	o.threshold = int(o.cfg.Get(CfgOOMThreshold, 4096))
	return nil
}

// Execute implements worker.Bolt.
func (o *OOMSplitter) Execute(ctx *worker.Context, in tuple.Tuple) error {
	if ctx.QueueLen() > o.threshold {
		return fmt.Errorf("workload: OutOfMemoryError in split[%d] (backlog %d)", ctx.Index(), ctx.QueueLen())
	}
	return o.Splitter.Execute(ctx, in)
}

// Counter is the stateful word counter of Fig 2 and Listing 2: it caches
// per-word counts in memory and flushes them downstream when a SIGNAL
// tuple arrives.
type Counter struct {
	stats  *Stats
	tl     *metrics.Timeline
	total  *metrics.Counter
	counts map[string]int64
}

// Open implements worker.Component.
func (c *Counter) Open(ctx *worker.Context) error {
	c.stats, _ = env(ctx)
	c.tl = c.stats.Timeline(fmt.Sprintf("count/%d", ctx.WorkerID()))
	c.total = c.stats.Counter("count.total")
	c.counts = make(map[string]int64)
	return nil
}

// Close implements worker.Component.
func (c *Counter) Close(*worker.Context) error { return nil }

// Execute implements worker.Bolt.
func (c *Counter) Execute(ctx *worker.Context, in tuple.Tuple) error {
	if in.Stream.IsSignal() {
		// Flush the cache (Listing 2's emitRankings pattern).
		for w, n := range c.counts {
			ctx.Emit(tuple.String(w), tuple.Int(n))
		}
		c.counts = make(map[string]int64)
		c.stats.Counter("count.flushes").Inc()
		return nil
	}
	c.counts[in.Field(0).AsString()]++
	c.tl.Add(time.Now(), 1)
	c.total.Inc()
	return nil
}

// CacheSize reports the in-memory cache size (tests).
func (c *Counter) CacheSize() int { return len(c.counts) }

// Sink counts everything it receives, per worker and globally.
type Sink struct {
	stats *Stats
	tl    *metrics.Timeline
	total *metrics.Counter
}

// Open implements worker.Component.
func (s *Sink) Open(ctx *worker.Context) error {
	s.stats, _ = env(ctx)
	s.tl = s.stats.Timeline(fmt.Sprintf("sink/%d", ctx.WorkerID()))
	s.total = s.stats.Counter("sink.total")
	return nil
}

// Close implements worker.Component.
func (s *Sink) Close(*worker.Context) error { return nil }

// Execute implements worker.Bolt.
func (s *Sink) Execute(_ *worker.Context, in tuple.Tuple) error {
	if in.Stream.IsSignal() {
		return nil
	}
	s.total.Inc()
	s.tl.Add(time.Now(), 1)
	return nil
}

// DebugSink is the live-debugger's debug worker (§4): it receives mirrored
// tuples and counts them without touching the pipeline.
type DebugSink struct {
	stats *Stats
	seen  *metrics.Counter
}

// Open implements worker.Component.
func (d *DebugSink) Open(ctx *worker.Context) error {
	d.stats, _ = env(ctx)
	d.seen = d.stats.Counter("debug.seen")
	return nil
}

// Close implements worker.Component.
func (d *DebugSink) Close(*worker.Context) error { return nil }

// Execute implements worker.Bolt.
func (d *DebugSink) Execute(_ *worker.Context, in tuple.Tuple) error {
	if !in.Stream.IsSignal() {
		d.seen.Inc()
	}
	return nil
}

package workload

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"strconv"
	"time"

	"typhoon/internal/kafkasim"
	"typhoon/internal/kvstore"
	"typhoon/internal/metrics"
	"typhoon/internal/tuple"
	"typhoon/internal/worker"
)

// Yahoo streaming benchmark (Fig 13): kafka-client → parse → filter →
// projection → join → aggregation&store, with Kafka and Redis emulated by
// kafkasim and kvstore. The §6.2 computation-logic reconfiguration swaps
// LogicFilterView for LogicFilterViewClick at runtime.

// Yahoo logic names.
const (
	LogicKafkaClient     = "yahoo/kafka-client"
	LogicParse           = "yahoo/parse"
	LogicFilterView      = "yahoo/filter-view"
	LogicFilterViewClick = "yahoo/filter-view-click"
	LogicProjection      = "yahoo/projection"
	LogicJoin            = "yahoo/join"
	LogicAggStore        = "yahoo/agg-store"
)

// AdEvent is the benchmark's input record.
type AdEvent struct {
	UserID    string `json:"user_id"`
	PageID    string `json:"page_id"`
	AdID      string `json:"ad_id"`
	AdType    string `json:"ad_type"`
	EventType string `json:"event_type"`
	EventTime int64  `json:"event_time"`
	IPAddress string `json:"ip_address"`
}

// WindowSize is the aggregation window (the paper uses a 10-second tuple
// window; experiments shrink it via CfgWindowMillis).
const CfgWindowMillis = "yahoo.window.ms"

func init() {
	worker.RegisterLogic(LogicKafkaClient, func() worker.Component { return &KafkaClient{} })
	worker.RegisterLogic(LogicParse, func() worker.Component { return &Parse{} })
	worker.RegisterLogic(LogicFilterView, func() worker.Component { return &Filter{allow: map[string]bool{"view": true}} })
	worker.RegisterLogic(LogicFilterViewClick, func() worker.Component {
		return &Filter{allow: map[string]bool{"view": true, "click": true}}
	})
	worker.RegisterLogic(LogicProjection, func() worker.Component { return &Projection{} })
	worker.RegisterLogic(LogicJoin, func() worker.Component { return &Join{} })
	worker.RegisterLogic(LogicAggStore, func() worker.Component { return &AggStore{} })
}

// AdEventGen produces synthetic ad events over a fixed campaign/ad
// universe, standing in for the benchmark's event producers.
type AdEventGen struct {
	rng       *rand.Rand
	Campaigns int
	AdsPerC   int
	types     []string
}

// NewAdEventGen builds a generator.
func NewAdEventGen(seed int64, campaigns, adsPerCampaign int) *AdEventGen {
	return &AdEventGen{
		rng:       rand.New(rand.NewSource(seed)),
		Campaigns: campaigns,
		AdsPerC:   adsPerCampaign,
		types:     []string{"view", "click", "purchase"},
	}
}

// PrepopulateCampaigns loads the ad→campaign mapping into the KV store,
// the join table the benchmark reads.
func (g *AdEventGen) PrepopulateCampaigns(kv *kvstore.Store) {
	for c := 0; c < g.Campaigns; c++ {
		for a := 0; a < g.AdsPerC; a++ {
			kv.Set("ad:"+adID(c, a), "campaign:"+strconv.Itoa(c))
		}
	}
}

func adID(campaign, ad int) string {
	return fmt.Sprintf("%d-%d", campaign, ad)
}

// Next produces one JSON-encoded event.
func (g *AdEventGen) Next(now time.Time) []byte {
	c := g.rng.Intn(g.Campaigns)
	ev := AdEvent{
		UserID:    strconv.Itoa(g.rng.Intn(100000)),
		PageID:    strconv.Itoa(g.rng.Intn(1000)),
		AdID:      adID(c, g.rng.Intn(g.AdsPerC)),
		AdType:    "banner",
		EventType: g.types[g.rng.Intn(len(g.types))],
		EventTime: now.UnixMilli(),
		IPAddress: "10.0.0.1",
	}
	b, err := json.Marshal(ev)
	if err != nil {
		panic("workload: unmarshalable ad event: " + err.Error())
	}
	return b
}

// Produce appends n events to the log.
func (g *AdEventGen) Produce(log *kafkasim.Log, n int, now time.Time) {
	for i := 0; i < n; i++ {
		log.Produce(g.Next(now))
	}
}

// KafkaClient is the pipeline's source: it polls the emulated Kafka log
// and emits raw event records.
type KafkaClient struct {
	consumer *kafkasim.Consumer
	stats    *Stats
}

// Open implements worker.Component.
func (k *KafkaClient) Open(ctx *worker.Context) error {
	k.stats, _ = env(ctx)
	log, _ := ctx.Env().Get(EnvKafka).(*kafkasim.Log)
	if log == nil {
		return fmt.Errorf("workload: no kafka log in environment")
	}
	k.consumer = log.NewConsumer()
	return nil
}

// Close implements worker.Component.
func (k *KafkaClient) Close(*worker.Context) error { return nil }

// Next implements worker.Spout.
func (k *KafkaClient) Next(ctx *worker.Context) (bool, error) {
	records := k.consumer.Poll(32)
	if len(records) == 0 {
		return false, nil
	}
	for _, r := range records {
		ctx.Emit(tuple.Bytes(r))
	}
	k.stats.Counter("yahoo.consumed").Add(uint64(len(records)))
	return true, nil
}

// Parse deserializes raw events into (ad_id, event_type, event_time).
type Parse struct{ tl *metrics.Timeline }

// Open implements worker.Component.
func (p *Parse) Open(ctx *worker.Context) error {
	st, _ := env(ctx)
	p.tl = st.Timeline(fmt.Sprintf("parse/%d", ctx.WorkerID()))
	return nil
}

// Close implements worker.Component.
func (p *Parse) Close(*worker.Context) error { return nil }

// Execute implements worker.Bolt.
func (p *Parse) Execute(ctx *worker.Context, in tuple.Tuple) error {
	if in.Stream.IsSignal() {
		return nil
	}
	var ev AdEvent
	if err := json.Unmarshal(in.Field(0).AsBytes(), &ev); err != nil {
		return nil // malformed input records are dropped, not fatal
	}
	ctx.Emit(tuple.String(ev.AdID), tuple.String(ev.EventType), tuple.Int(ev.EventTime))
	p.tl.Add(time.Now(), 1)
	return nil
}

// Filter keeps events whose type is allowed; swapping the filter logic at
// runtime is the Fig 14 experiment.
type Filter struct {
	allow map[string]bool
	stats *Stats
}

// Open implements worker.Component.
func (f *Filter) Open(ctx *worker.Context) error {
	f.stats, _ = env(ctx)
	return nil
}

// Close implements worker.Component.
func (f *Filter) Close(*worker.Context) error { return nil }

// Execute implements worker.Bolt.
func (f *Filter) Execute(ctx *worker.Context, in tuple.Tuple) error {
	if in.Stream.IsSignal() {
		return nil
	}
	if !f.allow[in.Field(1).AsString()] {
		f.stats.Counter("yahoo.filtered").Inc()
		return nil
	}
	ctx.Emit(in.Values...)
	return nil
}

// Projection keeps (ad_id, event_time).
type Projection struct{}

// Open implements worker.Component.
func (Projection) Open(*worker.Context) error { return nil }

// Close implements worker.Component.
func (Projection) Close(*worker.Context) error { return nil }

// Execute implements worker.Bolt.
func (Projection) Execute(ctx *worker.Context, in tuple.Tuple) error {
	if in.Stream.IsSignal() {
		return nil
	}
	ctx.Emit(in.Field(0), in.Field(2))
	return nil
}

// Join resolves ad_id → campaign_id through the KV store, caching lookups
// locally (the benchmark's join bolt keeps a local cache).
type Join struct {
	kv    *kvstore.Store
	cache map[string]string
	stats *Stats
}

// Open implements worker.Component.
func (j *Join) Open(ctx *worker.Context) error {
	j.stats, _ = env(ctx)
	j.kv, _ = ctx.Env().Get(EnvKV).(*kvstore.Store)
	if j.kv == nil {
		return fmt.Errorf("workload: no kv store in environment")
	}
	j.cache = make(map[string]string)
	return nil
}

// Close implements worker.Component.
func (j *Join) Close(*worker.Context) error { return nil }

// Execute implements worker.Bolt.
func (j *Join) Execute(ctx *worker.Context, in tuple.Tuple) error {
	if in.Stream.IsSignal() {
		j.cache = make(map[string]string) // flush local cache
		return nil
	}
	ad := in.Field(0).AsString()
	campaign, ok := j.cache[ad]
	if !ok {
		campaign, ok = j.kv.Get("ad:" + ad)
		if !ok {
			j.stats.Counter("yahoo.join.misses").Inc()
			return nil
		}
		j.cache[ad] = campaign
	}
	ctx.Emit(tuple.String(campaign), in.Field(1))
	return nil
}

// AggStore is the stateful sink: it aggregates per-campaign counts in
// event-time windows in memory, flushing each window to the KV store when
// the window advances (or a SIGNAL arrives).
type AggStore struct {
	kv     *kvstore.Store
	stats  *Stats
	tl     *metrics.Timeline
	window int64
	curWin int64
	counts map[string]int64 // "campaign|window" -> count
}

// Open implements worker.Component.
func (a *AggStore) Open(ctx *worker.Context) error {
	st, cfg := env(ctx)
	a.stats = st
	a.tl = st.Timeline(fmt.Sprintf("agg/%d", ctx.WorkerID()))
	a.kv, _ = ctx.Env().Get(EnvKV).(*kvstore.Store)
	if a.kv == nil {
		return fmt.Errorf("workload: no kv store in environment")
	}
	a.window = cfg.Get(CfgWindowMillis, 10000)
	a.counts = make(map[string]int64)
	return nil
}

// Close implements worker.Component.
func (a *AggStore) Close(*worker.Context) error { return nil }

// Execute implements worker.Bolt.
func (a *AggStore) Execute(ctx *worker.Context, in tuple.Tuple) error {
	if in.Stream.IsSignal() {
		a.flush()
		return nil
	}
	campaign := in.Field(0).AsString()
	win := in.Field(1).AsInt() / a.window
	// Window advance closes the previous window into the store.
	if a.curWin != 0 && win > a.curWin {
		a.flush()
	}
	if win > a.curWin {
		a.curWin = win
	}
	a.counts[campaign+"|"+strconv.FormatInt(win, 10)]++
	a.tl.Add(time.Now(), 1)
	a.stats.Counter("yahoo.agg.total").Inc()
	if len(a.counts) > 4096 {
		a.flush()
	}
	return nil
}

func (a *AggStore) flush() {
	for key, n := range a.counts {
		a.kv.Incr("window:"+key, n)
	}
	a.counts = make(map[string]int64)
	a.stats.Counter("yahoo.agg.flushes").Inc()
}

// Stateful reference components for the §3.5 stable update protocol: the
// word counter's keyed cache and a tumbling-window counter both implement
// worker.StatefulComponent, so a managed rescale can snapshot their state
// by key range and re-partition it onto a new instance set.
package workload

import (
	"encoding/json"
	"fmt"
	"strconv"

	"typhoon/internal/metrics"
	"typhoon/internal/tuple"
	"typhoon/internal/worker"
)

// LogicWindowCounter names the windowed keyed counter.
const LogicWindowCounter = "workload/window-counter"

func init() {
	worker.RegisterLogic(LogicWindowCounter, func() worker.Component { return &WindowedCounter{} })
}

// SnapshotState implements worker.StatefulComponent: each word's count in
// the requested partition range, encoded as decimal text.
func (c *Counter) SnapshotState(_ *worker.Context, r worker.KeyRange) (map[string][]byte, error) {
	out := make(map[string][]byte)
	for w, n := range c.counts {
		if r.Contains(worker.PartitionOfKey(w)) {
			out[w] = []byte(strconv.FormatInt(n, 10))
		}
	}
	return out, nil
}

// RestoreState implements worker.StatefulComponent with replace semantics:
// the cache becomes exactly the migrated entries.
func (c *Counter) RestoreState(_ *worker.Context, state map[string][]byte) error {
	counts := make(map[string]int64, len(state))
	for w, blob := range state {
		n, err := strconv.ParseInt(string(blob), 10, 64)
		if err != nil {
			return fmt.Errorf("workload: bad count for %q: %w", w, err)
		}
		counts[w] = n
	}
	c.counts = counts
	return nil
}

// WindowedCounter counts (key, time) tuples into per-key tumbling windows
// of CfgWindowSize time units — the windowed-aggregation shape whose state
// is structured, not scalar, so migrations must preserve whole window
// tables. Field 0 is the key, field 1 the integer (virtual) timestamp.
// On SIGNAL it emits (key, window, count) for every closed window, keeping
// only the currently open one per key.
type WindowedCounter struct {
	stats   *Stats
	total   *metrics.Counter
	size    int64
	windows map[string]map[int64]int64
	// watermark is the highest timestamp seen; windows ending at or before
	// it are closed on the next SIGNAL.
	watermark int64
}

// CfgWindowSize sets the tumbling window width in input time units.
const CfgWindowSize = "window.size"

// Open implements worker.Component.
func (w *WindowedCounter) Open(ctx *worker.Context) error {
	w.stats, _ = env(ctx)
	_, cfg := env(ctx)
	w.size = cfg.Get(CfgWindowSize, 100)
	if w.size < 1 {
		w.size = 1
	}
	w.total = w.stats.Counter("window.total")
	w.windows = make(map[string]map[int64]int64)
	return nil
}

// Close implements worker.Component.
func (w *WindowedCounter) Close(*worker.Context) error { return nil }

// Execute implements worker.Bolt.
func (w *WindowedCounter) Execute(ctx *worker.Context, in tuple.Tuple) error {
	if in.Stream.IsSignal() {
		closed := w.watermark / w.size // windows strictly below stay closed
		for key, wins := range w.windows {
			for win, n := range wins {
				if win < closed {
					ctx.Emit(tuple.String(key), tuple.Int(win), tuple.Int(n))
					delete(wins, win)
				}
			}
			if len(wins) == 0 {
				delete(w.windows, key)
			}
		}
		return nil
	}
	key := in.Field(0).AsString()
	ts := in.Field(1).AsInt()
	if ts > w.watermark {
		w.watermark = ts
	}
	wins := w.windows[key]
	if wins == nil {
		wins = make(map[int64]int64)
		w.windows[key] = wins
	}
	wins[ts/w.size]++
	w.total.Inc()
	return nil
}

// windowState is the wire form of one key's window table.
type windowState struct {
	Watermark int64           `json:"wm"`
	Windows   map[int64]int64 `json:"w"`
}

// SnapshotState implements worker.StatefulComponent: each key's full
// window table (JSON) in the requested partition range, carrying the
// watermark so restored instances keep closing windows correctly.
func (w *WindowedCounter) SnapshotState(_ *worker.Context, r worker.KeyRange) (map[string][]byte, error) {
	out := make(map[string][]byte)
	for key, wins := range w.windows {
		if !r.Contains(worker.PartitionOfKey(key)) {
			continue
		}
		blob, err := json.Marshal(windowState{Watermark: w.watermark, Windows: wins})
		if err != nil {
			return nil, err
		}
		out[key] = blob
	}
	return out, nil
}

// RestoreState implements worker.StatefulComponent with replace semantics.
func (w *WindowedCounter) RestoreState(_ *worker.Context, state map[string][]byte) error {
	windows := make(map[string]map[int64]int64, len(state))
	var wm int64
	for key, blob := range state {
		var ws windowState
		if err := json.Unmarshal(blob, &ws); err != nil {
			return fmt.Errorf("workload: bad window state for %q: %w", key, err)
		}
		windows[key] = ws.Windows
		if ws.Watermark > wm {
			wm = ws.Watermark
		}
	}
	w.windows = windows
	if wm > w.watermark {
		w.watermark = wm
	}
	return nil
}

// WindowCount reports one key's count in one window (tests).
func (w *WindowedCounter) WindowCount(key string, win int64) int64 {
	return w.windows[key][win]
}

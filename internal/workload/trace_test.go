package workload

import (
	"math"
	"sort"
	"testing"
	"time"
)

func materialize(t *testing.T, spec TraceSpec, limit int) []TraceEvent {
	t.Helper()
	tr, err := NewTrace(spec)
	if err != nil {
		t.Fatal(err)
	}
	var out []TraceEvent
	for len(out) < limit {
		ev, ok := tr.Next()
		if !ok {
			break
		}
		out = append(out, ev)
	}
	return out
}

// TestTraceDeterminism pins generator reproducibility: the same spec and
// seed must produce an identical event sequence twice — the property that
// makes recorded-scenario replay and cross-run comparison meaningful.
func TestTraceDeterminism(t *testing.T) {
	spec := TraceSpec{
		Seed: 99, Keys: 40, Skew: 1.3,
		Stages: []TraceStage{
			{Duration: Duration(2 * time.Second), Rate: 500},
			{Duration: Duration(time.Second), Rate: 500, EndRate: 3000},
			{Duration: Duration(time.Second), Rate: 4000},
		},
		Loop: true,
	}
	a := materialize(t, spec, 20000)
	b := materialize(t, spec, 20000)
	if len(a) != 20000 || len(b) != 20000 {
		t.Fatalf("materialized %d and %d events, want 20000 each", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("event %d diverged: %+v vs %+v", i, a[i], b[i])
		}
	}
	// A different seed must actually change the trace (keys, not timing).
	spec.Seed = 100
	c := materialize(t, spec, 20000)
	same := 0
	for i := range a {
		if a[i].Key == c[i].Key {
			same++
		}
	}
	if same == len(a) {
		t.Fatalf("seed change left the key sequence identical")
	}
}

// TestTraceDeterminismReplay pins replay reproducibility and ordering: an
// unsorted recorded list replays in time order, with per-key sequences
// assigned identically across runs.
func TestTraceDeterminismReplay(t *testing.T) {
	spec := TraceSpec{Replay: []ReplayEvent{
		{At: Duration(30 * time.Millisecond), Key: "b"},
		{At: Duration(10 * time.Millisecond), Key: "a"},
		{At: Duration(20 * time.Millisecond), Key: "a"},
	}}
	a := materialize(t, spec, 10)
	b := materialize(t, spec, 10)
	want := []TraceEvent{
		{At: 10 * time.Millisecond, Key: "a", Seq: 1},
		{At: 20 * time.Millisecond, Key: "a", Seq: 2},
		{At: 30 * time.Millisecond, Key: "b", Seq: 1},
	}
	for i, w := range want {
		if a[i] != w || b[i] != w {
			t.Fatalf("replay event %d = %+v / %+v, want %+v", i, a[i], b[i], w)
		}
	}
}

// TestTraceZipfSlope is the statistical sanity check on the skewed key
// distribution: the rank-frequency curve's log-log slope over the head
// ranks must sit near the configured exponent's -s.
func TestTraceZipfSlope(t *testing.T) {
	const skew = 1.3
	spec := TraceSpec{
		Seed: 7, Keys: 64, Skew: skew,
		Stages: []TraceStage{{Duration: Duration(time.Second), Rate: 1000}},
		Loop:   true,
	}
	events := materialize(t, spec, 200000)
	freq := make(map[string]float64)
	for _, ev := range events {
		freq[ev.Key]++
	}
	counts := make([]float64, 0, len(freq))
	for _, n := range freq {
		counts = append(counts, n)
	}
	sort.Sort(sort.Reverse(sort.Float64Slice(counts)))
	// Least-squares slope of log(freq) on log(rank) over the head ranks,
	// where truncation of the finite key space distorts least.
	head := 12
	if head > len(counts) {
		head = len(counts)
	}
	var sx, sy, sxx, sxy float64
	for r := 0; r < head; r++ {
		x, y := math.Log(float64(r+1)), math.Log(counts[r])
		sx += x
		sy += y
		sxx += x * x
		sxy += x * y
	}
	n := float64(head)
	slope := (n*sxy - sx*sy) / (n*sxx - sx*sx)
	if math.Abs(slope+skew) > 0.35 {
		t.Fatalf("zipf rank-frequency slope %.3f, want ~%.1f +/- 0.35", slope, -skew)
	}
	// The hottest key must dominate a uniform share by a wide margin.
	if counts[0] < 4*float64(len(events))/float64(spec.Keys) {
		t.Fatalf("head key carries %.0f of %d events; distribution looks uniform", counts[0], len(events))
	}
}

// TestTraceRateEnvelope checks the staged schedule emits the configured
// open-loop rate envelope: per-bucket event counts match the integral of
// the configured rate over each bucket.
func TestTraceRateEnvelope(t *testing.T) {
	spec := TraceSpec{
		Seed: 3, Keys: 16,
		Stages: []TraceStage{
			{Duration: Duration(2 * time.Second), Rate: 1000},
			{Duration: Duration(2 * time.Second), Rate: 1000, EndRate: 3000},
			{Duration: Duration(time.Second), Rate: 5000}, // burst
			{Duration: Duration(time.Second)},             // silence
			{Duration: Duration(time.Second), Rate: 500},
		},
	}
	events := materialize(t, spec, 1<<20)
	const bucket = 500 * time.Millisecond
	got := make(map[int]float64)
	for _, ev := range events {
		got[int(ev.At/bucket)]++
	}
	// rateAt mirrors the envelope definition.
	rateAt := func(at time.Duration) float64 {
		for _, st := range spec.Stages {
			d := st.Duration.D()
			if at < d {
				if st.EndRate > 0 {
					return st.Rate + (st.EndRate-st.Rate)*float64(at)/float64(d)
				}
				return st.Rate
			}
			at -= d
		}
		return 0
	}
	total := spec.Length()
	for b := 0; b < int(total/bucket); b++ {
		// Trapezoidal integral of the envelope across the bucket.
		lo, hi := time.Duration(b)*bucket, time.Duration(b+1)*bucket
		want := (rateAt(lo) + rateAt(hi-time.Millisecond)) / 2 * bucket.Seconds()
		tol := 3 + 0.06*want
		if math.Abs(got[b]-want) > tol {
			t.Fatalf("bucket %d (t=%v): %d events, want %.0f +/- %.0f",
				b, lo, int(got[b]), want, tol)
		}
	}
	// Totality: every event landed inside the envelope's span.
	for b := range got {
		if b < 0 || b >= int(total/bucket) {
			t.Fatalf("events scheduled outside the envelope (bucket %d)", b)
		}
	}
}

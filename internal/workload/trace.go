package workload

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"sort"
	"time"
)

// Duration is a time.Duration that round-trips through JSON as a human
// duration string ("1.5s", "200ms"). Bare numbers are accepted on input and
// mean nanoseconds, matching time.Duration's native encoding, so specs that
// predate the string form keep parsing.
type Duration time.Duration

// D converts to the standard library type.
func (d Duration) D() time.Duration { return time.Duration(d) }

// MarshalJSON implements json.Marshaler.
func (d Duration) MarshalJSON() ([]byte, error) {
	return json.Marshal(time.Duration(d).String())
}

// UnmarshalJSON implements json.Unmarshaler.
func (d *Duration) UnmarshalJSON(raw []byte) error {
	var s string
	if err := json.Unmarshal(raw, &s); err == nil {
		parsed, perr := time.ParseDuration(s)
		if perr != nil {
			return fmt.Errorf("workload: bad duration %q: %w", s, perr)
		}
		*d = Duration(parsed)
		return nil
	}
	var n int64
	if err := json.Unmarshal(raw, &n); err != nil {
		return fmt.Errorf("workload: duration must be a string like \"500ms\" or nanoseconds")
	}
	*d = Duration(n)
	return nil
}

// TraceStage is one segment of a trace's rate envelope. Rate is the event
// rate at stage start (events/second); a non-zero EndRate ramps linearly to
// that rate across the stage (diurnal ramps). A stage with Rate 0 and
// EndRate 0 is a silent gap. Bursts are short stages at a high flat rate.
type TraceStage struct {
	Duration Duration `json:"duration"`
	Rate     float64  `json:"rate"`
	EndRate  float64  `json:"endRate,omitempty"`
}

// ReplayEvent is one recorded event of a replay trace.
type ReplayEvent struct {
	// At is the event's offset from trace start.
	At Duration `json:"at"`
	// Key is the routing key; empty keys are rejected.
	Key string `json:"key"`
}

// TraceSpec declares a deterministic workload trace: a seeded key
// distribution (Zipf-skewed or uniform) sampled under a staged rate
// envelope, or the replay of a recorded event list. The emitted event
// sequence is a pure function of the spec — same spec, same trace.
type TraceSpec struct {
	// Seed drives key sampling. The scenario harness fills a zero seed
	// from the run seed.
	Seed int64 `json:"seed,omitempty"`
	// Keys is the key-space size (generated traces).
	Keys int `json:"keys,omitempty"`
	// Skew selects the key distribution: 0 is uniform, s > 1 is Zipf with
	// exponent s (rank-r key frequency proportional to r^-s).
	Skew float64 `json:"skew,omitempty"`
	// KeyPrefix namespaces the generated key names (default "k").
	KeyPrefix string `json:"keyPrefix,omitempty"`
	// Stages is the rate envelope, played in order.
	Stages []TraceStage `json:"stages,omitempty"`
	// Loop repeats the envelope (or replay) forever; the consumer bounds
	// the trace externally (the scenario run duration).
	Loop bool `json:"loop,omitempty"`
	// Replay plays a recorded event list instead of sampling; Keys, Skew
	// and Stages are ignored.
	Replay []ReplayEvent `json:"replay,omitempty"`
}

// Validate checks the spec is generatable.
func (s TraceSpec) Validate() error {
	if len(s.Replay) > 0 {
		for i, ev := range s.Replay {
			if ev.Key == "" {
				return fmt.Errorf("workload: replay event %d has an empty key", i)
			}
			if ev.At < 0 {
				return fmt.Errorf("workload: replay event %d has a negative offset", i)
			}
		}
		return nil
	}
	if s.Keys < 1 {
		return fmt.Errorf("workload: trace needs keys >= 1 (got %d)", s.Keys)
	}
	if s.Skew != 0 && s.Skew <= 1 {
		return fmt.Errorf("workload: zipf skew must be > 1 (got %v); 0 selects uniform", s.Skew)
	}
	if len(s.Stages) == 0 {
		return fmt.Errorf("workload: trace has no stages")
	}
	for i, st := range s.Stages {
		if st.Duration <= 0 {
			return fmt.Errorf("workload: stage %d needs a positive duration", i)
		}
		if st.Rate < 0 || st.EndRate < 0 {
			return fmt.Errorf("workload: stage %d has a negative rate", i)
		}
		if st.Rate == 0 && st.EndRate != 0 {
			return fmt.Errorf("workload: stage %d ramps from rate 0; start from a positive rate", i)
		}
	}
	return nil
}

// Length is the duration of one envelope (or replay) cycle.
func (s TraceSpec) Length() time.Duration {
	if len(s.Replay) > 0 {
		var max time.Duration
		for _, ev := range s.Replay {
			if ev.At.D() > max {
				max = ev.At.D()
			}
		}
		// The cycle must strictly advance so a looped replay never
		// schedules two events at the same instant of different cycles.
		return max + time.Millisecond
	}
	var total time.Duration
	for _, st := range s.Stages {
		total += st.Duration.D()
	}
	return total
}

// TraceEvent is one scheduled send: the key, its per-key sequence number
// (1-based, assigned in schedule order), and the intended send time as an
// offset from trace start. Open-loop load generation emits each event at
// its At offset regardless of completions.
type TraceEvent struct {
	At  time.Duration
	Key string
	Seq int64
}

// Trace is a deterministic event generator. Not safe for concurrent use;
// one goroutine (the open-loop source) owns it.
type Trace struct {
	spec   TraceSpec
	rng    *rand.Rand
	zipf   *rand.Zipf
	keys   []string
	next   map[string]int64
	replay []ReplayEvent

	cycleLen time.Duration
	cycleOff time.Duration
	cursor   time.Duration // within the current cycle
	stage    int
	inStage  time.Duration
	rIdx     int
	total    int64
}

// NewTrace validates the spec and builds its generator.
func NewTrace(spec TraceSpec) (*Trace, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	t := &Trace{
		spec:     spec,
		rng:      rand.New(rand.NewSource(spec.Seed)),
		next:     make(map[string]int64),
		cycleLen: spec.Length(),
	}
	if len(spec.Replay) > 0 {
		t.replay = append([]ReplayEvent(nil), spec.Replay...)
		sort.SliceStable(t.replay, func(i, j int) bool {
			return t.replay[i].At < t.replay[j].At
		})
		return t, nil
	}
	prefix := spec.KeyPrefix
	if prefix == "" {
		prefix = "k"
	}
	t.keys = make([]string, spec.Keys)
	for i := range t.keys {
		t.keys[i] = fmt.Sprintf("%s%04d", prefix, i)
	}
	if spec.Skew != 0 {
		// Shuffle rank->key so the hottest keys land on seed-dependent
		// partitions instead of always hashing the same way.
		t.rng.Shuffle(len(t.keys), func(i, j int) {
			t.keys[i], t.keys[j] = t.keys[j], t.keys[i]
		})
		if spec.Keys > 1 {
			t.zipf = rand.NewZipf(t.rng, spec.Skew, 1, uint64(spec.Keys-1))
		}
	}
	return t, nil
}

// Next returns the following event, or ok=false when the trace is
// exhausted (a looping trace never exhausts; bound it externally).
func (t *Trace) Next() (TraceEvent, bool) {
	for {
		if ev, ok := t.nextInCycle(); ok {
			key := ev.Key
			t.next[key]++
			ev.Seq = t.next[key]
			ev.At += t.cycleOff
			t.total++
			return ev, true
		}
		if !t.spec.Loop {
			return TraceEvent{}, false
		}
		t.cycleOff += t.cycleLen
		t.cursor, t.stage, t.inStage, t.rIdx = 0, 0, 0, 0
	}
}

// nextInCycle advances within one envelope (or replay) cycle.
func (t *Trace) nextInCycle() (TraceEvent, bool) {
	if t.replay != nil {
		if t.rIdx >= len(t.replay) {
			return TraceEvent{}, false
		}
		ev := t.replay[t.rIdx]
		t.rIdx++
		return TraceEvent{At: ev.At.D(), Key: ev.Key}, true
	}
	for t.stage < len(t.spec.Stages) {
		st := t.spec.Stages[t.stage]
		d := st.Duration.D()
		if st.Rate == 0 && st.EndRate == 0 {
			t.cursor += d - t.inStage
			t.stage++
			t.inStage = 0
			continue
		}
		rate := st.Rate
		if st.EndRate > 0 {
			rate += (st.EndRate - st.Rate) * float64(t.inStage) / float64(d)
		}
		step := time.Duration(float64(time.Second) / rate)
		if step <= 0 {
			step = time.Nanosecond
		}
		if t.inStage+step >= d {
			t.cursor += d - t.inStage
			t.stage++
			t.inStage = 0
			continue
		}
		t.inStage += step
		t.cursor += step
		return TraceEvent{At: t.cursor, Key: t.pickKey()}, true
	}
	return TraceEvent{}, false
}

func (t *Trace) pickKey() string {
	if t.zipf != nil {
		return t.keys[t.zipf.Uint64()]
	}
	return t.keys[t.rng.Intn(len(t.keys))]
}

// Total reports events generated so far.
func (t *Trace) Total() int64 { return t.total }

#!/bin/sh
# Nightly chaos soak: the chaos-soak scenario (partitions, crashes, netem
# loss, flow-table wipes, a mid-run rescale across two tenants) run long
# under the race detector, with the per-interval latency trajectories
# exported as BENCH_e2e.json. SOAK_DURATION stretches the scenario's play
# time (default 2m for CI; the in-repo test default is 8s).
set -eux
cd "$(dirname "$0")/.."
SOAK_DURATION="${SOAK_DURATION:-2m}" \
	BENCH_E2E_JSON="${BENCH_E2E_JSON:-BENCH_e2e.json}" \
	go test -race -run '^TestScenarioChaosSoak$' -count=1 -timeout 30m \
	./internal/scenario/ "$@"
test -s "${BENCH_E2E_JSON:-BENCH_e2e.json}"

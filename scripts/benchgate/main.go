// Command benchgate is the CI regression gate for the data-plane benchmark
// artifact: it compares the emit→recv figures in BENCH_dataplane.json
// against the checked-in floors in floors.json and fails the build when the
// tuple pipeline regresses past them.
//
//	go run ./scripts/benchgate                    # repo root, default paths
//	go run ./scripts/benchgate BENCH.json floors.json
//
// The floors are deliberately well below freshly measured numbers (roughly
// 0.6x throughput headroom) so scheduler noise on shared CI runners does not
// flake the gate, while an accidental return to per-tuple framing or
// per-tuple decode allocation — each worth 2x or more — still fails loudly.
package main

import (
	"encoding/json"
	"fmt"
	"os"
)

// floors is the checked-in contract for the emit→recv pipeline.
type floors struct {
	// EmitRecvTuplesPerSecMin is the end-to-end throughput floor at the
	// default batch size.
	EmitRecvTuplesPerSecMin float64 `json:"emitRecvTuplesPerSecMin"`
	// EmitRecvAllocsPerTupleMax is the allocation ceiling: the arena-decode
	// pipeline runs near zero, so anything past this means a per-tuple
	// allocation came back.
	EmitRecvAllocsPerTupleMax float64 `json:"emitRecvAllocsPerTupleMax"`
}

// artifact is the slice of BENCH_dataplane.json the gate reads.
type artifact struct {
	Report struct {
		EmitRecvTPS    float64 `json:"emitRecvTuplesPerSec"`
		EmitRecvAllocs float64 `json:"emitRecvAllocsPerTuple"`
	} `json:"report"`
}

func main() {
	benchPath := "BENCH_dataplane.json"
	floorsPath := "scripts/benchgate/floors.json"
	if len(os.Args) > 1 {
		benchPath = os.Args[1]
	}
	if len(os.Args) > 2 {
		floorsPath = os.Args[2]
	}

	var f floors
	if err := readJSON(floorsPath, &f); err != nil {
		fatal(err)
	}
	if f.EmitRecvTuplesPerSecMin <= 0 || f.EmitRecvAllocsPerTupleMax <= 0 {
		fatal(fmt.Errorf("floors %s: both emitRecvTuplesPerSecMin and emitRecvAllocsPerTupleMax must be positive", floorsPath))
	}
	var a artifact
	if err := readJSON(benchPath, &a); err != nil {
		fatal(err)
	}

	failed := false
	if a.Report.EmitRecvTPS < f.EmitRecvTuplesPerSecMin {
		fmt.Fprintf(os.Stderr, "benchgate: FAIL emitRecvTuplesPerSec %.0f < floor %.0f\n",
			a.Report.EmitRecvTPS, f.EmitRecvTuplesPerSecMin)
		failed = true
	} else {
		fmt.Printf("benchgate: ok   emitRecvTuplesPerSec %.0f >= floor %.0f\n",
			a.Report.EmitRecvTPS, f.EmitRecvTuplesPerSecMin)
	}
	if a.Report.EmitRecvAllocs > f.EmitRecvAllocsPerTupleMax {
		fmt.Fprintf(os.Stderr, "benchgate: FAIL emitRecvAllocsPerTuple %.4f > ceiling %.4f\n",
			a.Report.EmitRecvAllocs, f.EmitRecvAllocsPerTupleMax)
		failed = true
	} else {
		fmt.Printf("benchgate: ok   emitRecvAllocsPerTuple %.4f <= ceiling %.4f\n",
			a.Report.EmitRecvAllocs, f.EmitRecvAllocsPerTupleMax)
	}
	if failed {
		os.Exit(1)
	}
}

func readJSON(path string, v any) error {
	blob, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	if err := json.Unmarshal(blob, v); err != nil {
		return fmt.Errorf("%s: %w", path, err)
	}
	return nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "benchgate:", err)
	os.Exit(1)
}

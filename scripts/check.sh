#!/bin/sh
# Full verify sweep: build everything, vet everything, run all tests under
# the race detector. ROADMAP.md's tier-1 gate is the build+test subset; this
# script is the stricter local pre-commit check.
set -eux
cd "$(dirname "$0")/.."
go build ./...
go vet ./...
go test -race ./...
# Short fuzz smoke over the wire-format decoders (-fuzz takes one package
# at a time). Failures land reproducer files under testdata/fuzz/.
go test -fuzz '^FuzzDecode$' -fuzztime 5s -run '^FuzzDecode$' ./internal/openflow/
go test -fuzz '^FuzzDecode$' -fuzztime 5s -run '^FuzzDecode$' ./internal/packet/
go test -fuzz '^FuzzDecodeBatch$' -fuzztime 5s -run '^FuzzDecodeBatch$' ./internal/tuple/

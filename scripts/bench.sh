#!/bin/sh
# Benchmark artifacts for CI:
#   BENCH_rescale.json   — managed stable rescale end to end (pause time +
#                          throughput dip across the rescale).
#   BENCH_dataplane.json — data-plane fast path (flow-cache speedup, the
#                          1/64/1k/10k-rule forwarding curve, megaflow
#                          scatter hit rate, broadcast fan-out, codec and
#                          emit→recv allocs).
#   BENCH_failover.json  — replicated control-plane failover (detection
#                          latency, rules reconciled, frames dropped —
#                          target 0).
#   BENCH_qos.json       — multi-tenant QoS (guaranteed-tenant p99 under a
#                          best-effort flood, meter policing, and the
#                          zero-alloc QoS fast path).
# Extra arguments are passed to `go test`.
set -eux
cd "$(dirname "$0")/.."
BENCH_JSON="${BENCH_RESCALE_JSON:-BENCH_rescale.json}" \
	go test -run '^$' -bench '^BenchmarkRescale$' -benchtime 1x "$@" .
test -s "${BENCH_RESCALE_JSON:-BENCH_rescale.json}"
BENCH_JSON="${BENCH_DATAPLANE_JSON:-BENCH_dataplane.json}" \
	go test -run '^$' -bench '^BenchmarkDataplane$' -benchtime 1x "$@" .
test -s "${BENCH_DATAPLANE_JSON:-BENCH_dataplane.json}"
# Regression gate: emit→recv throughput and allocs against checked-in floors.
go run ./scripts/benchgate "${BENCH_DATAPLANE_JSON:-BENCH_dataplane.json}"
BENCH_JSON="${BENCH_FAILOVER_JSON:-BENCH_failover.json}" \
	go test -run '^$' -bench '^BenchmarkFailover$' -benchtime 1x "$@" .
test -s "${BENCH_FAILOVER_JSON:-BENCH_failover.json}"
BENCH_JSON="${BENCH_QOS_JSON:-BENCH_qos.json}" \
	go test -run '^$' -bench '^BenchmarkQoS$' -benchtime 1x "$@" .
test -s "${BENCH_QOS_JSON:-BENCH_qos.json}"

#!/bin/sh
# Rescale benchmark: run the managed stable rescale end to end and emit
# BENCH_rescale.json (pause time + throughput dip across the rescale) for
# the CI artifact upload. Extra arguments are passed to `go test`.
set -eux
cd "$(dirname "$0")/.."
BENCH_JSON="${BENCH_JSON:-BENCH_rescale.json}" \
	go test -run '^$' -bench '^BenchmarkRescale$' -benchtime 1x "$@" .
test -s "${BENCH_JSON:-BENCH_rescale.json}"

package typhoon

import (
	"sync/atomic"
	"testing"
	"time"
)

// facade smoke tests: the public API alone is enough to build, run and
// reconfigure a topology.

type apiSource struct{ n int64 }

func (s *apiSource) Open(*Context) error  { return nil }
func (s *apiSource) Close(*Context) error { return nil }
func (s *apiSource) Next(ctx *Context) (bool, error) {
	ctx.Emit(Int(s.n), String("payload"))
	s.n++
	return true, nil
}

var apiSeen atomic.Int64

type apiSink struct{}

func (apiSink) Open(*Context) error  { return nil }
func (apiSink) Close(*Context) error { return nil }
func (apiSink) Execute(_ *Context, in Tuple) error {
	if in.Stream == 0 {
		apiSeen.Add(1)
	}
	return nil
}

func TestPublicAPIPipeline(t *testing.T) {
	RegisterSpout("api-test/src", func() Spout { return &apiSource{} })
	RegisterBolt("api-test/sink", func() Bolt { return apiSink{} })

	cluster, err := NewCluster(Config{Hosts: []string{"h1", "h2"}})
	if err != nil {
		t.Fatal(err)
	}
	defer cluster.Stop()

	b := NewTopology("api", 1)
	b.Source("src", "api-test/src", 1)
	b.Node("sink", "api-test/sink", 2).ShuffleFrom("src")
	topo, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	if err := cluster.Submit(topo, 10*time.Second); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(10 * time.Second)
	for apiSeen.Load() < 1000 {
		if time.Now().After(deadline) {
			t.Fatalf("saw %d tuples", apiSeen.Load())
		}
		time.Sleep(10 * time.Millisecond)
	}
	// Runtime reconfiguration through the facade.
	if err := cluster.Manager.SetParallelism("api", "sink", 3); err != nil {
		t.Fatal(err)
	}
	if err := cluster.Manager.WaitReady("api", 10*time.Second); err != nil {
		t.Fatal(err)
	}
	if got := len(cluster.WorkersOf("api", "sink")); got == 0 {
		t.Fatal("no sink workers after reconfiguration")
	}
}

func TestPublicAPIBaselineMode(t *testing.T) {
	RegisterSpout("api-test/src2", func() Spout { return &apiSource{} })
	RegisterBolt("api-test/sink2", func() Bolt { return apiSink{} })
	cluster, err := NewCluster(Config{Mode: ModeStorm, Hosts: []string{"h1"}})
	if err != nil {
		t.Fatal(err)
	}
	defer cluster.Stop()
	b := NewTopology("api2", 2)
	b.Source("src", "api-test/src2", 1)
	b.Node("sink", "api-test/sink2", 1).ShuffleFrom("src")
	topo, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	before := apiSeen.Load()
	if err := cluster.Submit(topo, 10*time.Second); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(10 * time.Second)
	for apiSeen.Load() < before+500 {
		if time.Now().After(deadline) {
			t.Fatal("baseline pipeline stalled")
		}
		time.Sleep(10 * time.Millisecond)
	}
}

func TestValueConstructors(t *testing.T) {
	tp := Tuple{Values: []Value{Int(1), Float(2.5), Bool(true), String("s"), Bytes([]byte{1})}}
	if tp.Field(0).AsInt() != 1 || tp.Field(3).AsString() != "s" {
		t.Fatal("facade value constructors broken")
	}
}

package typhoon

// Benchmarks regenerating the paper's evaluation (one per table/figure,
// §6), plus micro-benchmarks of the substrates they exercise. The figure
// benches run a real emulated cluster and report tuples/s via
// b.ReportMetric, so `go test -bench` prints the same series the paper's
// plots show; `cmd/typhoon-bench` renders them in tabular form.

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"testing"
	"time"

	"typhoon/internal/conformance"
	"typhoon/internal/core"
	"typhoon/internal/experiments"
	"typhoon/internal/openflow"
	"typhoon/internal/packet"
	"typhoon/internal/topology"
	"typhoon/internal/tuple"
	"typhoon/internal/worker"
	"typhoon/internal/workload"
)

// benchCluster runs a topology until the named counter reaches target, and
// reports the steady-state rate.
func benchPipeline(b *testing.B, mode core.Mode, hosts, batch, ackers, fanout int) {
	b.Helper()
	names := make([]string, hosts)
	for i := range names {
		names[i] = fmt.Sprintf("h%d", i+1)
	}
	cfg := core.Config{Mode: mode, Hosts: names}
	if batch > 0 {
		cfg.DefaultBatchSize = batch
	}
	c, err := core.NewCluster(cfg)
	if err != nil {
		b.Fatal(err)
	}
	defer c.Stop()
	stats := workload.NewStats(time.Second)
	c.Env.Set(workload.EnvStats, stats)
	c.Env.Set(workload.EnvConfig, workload.NewConfig())

	tb := topology.NewBuilder("bench", 1)
	if ackers > 0 {
		tb.Ackers(ackers)
	}
	tb.Source("src", workload.LogicSeqSource, 1)
	counter := "seq.seen"
	if fanout > 1 {
		tb.Node("sink", workload.LogicSink, fanout).AllFrom("src")
		counter = "sink.total"
	} else {
		tb.Node("sink", workload.LogicSeqChecker, 1).ShuffleFrom("src")
	}
	l, err := tb.Build()
	if err != nil {
		b.Fatal(err)
	}
	if err := c.Submit(l, 15*time.Second); err != nil {
		b.Fatal(err)
	}

	// Warm up, then time the delivery of b.N tuples at the sink(s).
	deadline := time.Now().Add(10 * time.Second)
	for stats.Counter(counter).Value() == 0 {
		if time.Now().After(deadline) {
			b.Fatal("pipeline never started")
		}
		time.Sleep(5 * time.Millisecond)
	}
	start := stats.Counter(counter).Value()
	b.ResetTimer()
	t0 := time.Now()
	target := start + uint64(b.N)
	for stats.Counter(counter).Value() < target {
		if time.Since(t0) > 60*time.Second {
			b.Fatalf("stalled at %d of %d", stats.Counter(counter).Value()-start, b.N)
		}
		time.Sleep(time.Millisecond)
	}
	elapsed := time.Since(t0)
	b.StopTimer()
	b.ReportMetric(float64(b.N)/elapsed.Seconds(), "tuples/s")
}

// BenchmarkFig8aForwarding reproduces Fig 8(a): forwarding throughput,
// Storm vs Typhoon batch sizes, local and remote placements.
func BenchmarkFig8aForwarding(b *testing.B) {
	for _, place := range []struct {
		name  string
		hosts int
	}{{"Local", 1}, {"Remote", 2}} {
		b.Run("Storm/"+place.name, func(b *testing.B) {
			benchPipeline(b, core.ModeStorm, place.hosts, 0, 0, 1)
		})
		for _, batch := range []int{100, 250, 500, 1000} {
			b.Run(fmt.Sprintf("Typhoon%d/%s", batch, place.name), func(b *testing.B) {
				benchPipeline(b, core.ModeTyphoon, place.hosts, batch, 0, 1)
			})
		}
	}
}

// BenchmarkFig8bAcked reproduces Fig 8(b): forwarding with guaranteed
// processing through an acker worker.
func BenchmarkFig8bAcked(b *testing.B) {
	b.Run("Storm/Local", func(b *testing.B) { benchPipeline(b, core.ModeStorm, 1, 0, 1, 1) })
	b.Run("Typhoon100/Local", func(b *testing.B) { benchPipeline(b, core.ModeTyphoon, 1, 100, 1, 1) })
	b.Run("Storm/Remote", func(b *testing.B) { benchPipeline(b, core.ModeStorm, 2, 0, 1, 1) })
	b.Run("Typhoon100/Remote", func(b *testing.B) { benchPipeline(b, core.ModeTyphoon, 2, 100, 1, 1) })
}

// BenchmarkFig8cdLatency reproduces Figs 8(c)/8(d): end-to-end tuple
// latency with acking; the reported metric is the P50 in microseconds.
func BenchmarkFig8cdLatency(b *testing.B) {
	for _, cse := range []struct {
		name  string
		mode  core.Mode
		hosts int
	}{
		{"Storm/Local", core.ModeStorm, 1},
		{"Typhoon/Local", core.ModeTyphoon, 1},
		{"Storm/Remote", core.ModeStorm, 2},
		{"Typhoon/Remote", core.ModeTyphoon, 2},
	} {
		b.Run(cse.name, func(b *testing.B) {
			names := make([]string, cse.hosts)
			for i := range names {
				names[i] = fmt.Sprintf("h%d", i+1)
			}
			c, err := core.NewCluster(core.Config{Mode: cse.mode, Hosts: names, DefaultBatchSize: 100})
			if err != nil {
				b.Fatal(err)
			}
			defer c.Stop()
			c.Env.Set(workload.EnvStats, workload.NewStats(time.Second))
			c.Env.Set(workload.EnvConfig, workload.NewConfig())
			tb := topology.NewBuilder("lat", 1)
			tb.Ackers(1)
			tb.Source("src", workload.LogicSeqSource, 1)
			tb.Node("sink", workload.LogicSeqChecker, 1).ShuffleFrom("src")
			l, _ := tb.Build()
			if err := c.Submit(l, 15*time.Second); err != nil {
				b.Fatal(err)
			}
			var src = waitSrc(b, c, "lat")
			b.ResetTimer()
			t0 := time.Now()
			for src.StatsSnapshot().Completed < uint64(b.N) {
				if time.Since(t0) > 60*time.Second {
					b.Fatal("acking stalled")
				}
				time.Sleep(time.Millisecond)
			}
			b.StopTimer()
			b.ReportMetric(float64(src.CompleteLatencies.Quantile(0.5).Microseconds()), "p50-µs")
		})
	}
}

func waitSrc(b *testing.B, c *core.Cluster, topo string) *worker.Worker {
	b.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for {
		ws := c.WorkersOf(topo, "src")
		if len(ws) == 1 {
			return ws[0]
		}
		if time.Now().After(deadline) {
			b.Fatal("source missing")
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// BenchmarkFig9Broadcast reproduces Fig 9: one-to-many throughput as
// fan-out grows. The per-destination serialization cost makes the baseline
// fall with fan-out while Typhoon stays flat.
func BenchmarkFig9Broadcast(b *testing.B) {
	for _, fan := range []int{2, 4, 6} {
		b.Run(fmt.Sprintf("Storm/%dsinks", fan), func(b *testing.B) {
			benchPipeline(b, core.ModeStorm, 1, 0, 0, fan)
		})
		b.Run(fmt.Sprintf("Typhoon/%dsinks", fan), func(b *testing.B) {
			benchPipeline(b, core.ModeTyphoon, 1, 0, 0, fan)
		})
	}
}

// --- substrate micro-benchmarks ------------------------------------------

// BenchmarkTupleCodec measures tuple serialization/deserialization, the
// per-destination cost at the heart of Figs 9 and 12.
func BenchmarkTupleCodec(b *testing.B) {
	in := tuple.New(tuple.String("the quick brown fox"), tuple.Int(42), tuple.Float(3.14))
	b.Run("Encode", func(b *testing.B) {
		buf := make([]byte, 0, 128)
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			buf = tuple.AppendEncode(buf[:0], in)
		}
	})
	enc := tuple.Encode(in)
	b.Run("Decode", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, _, err := tuple.Decode(enc); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkOpenFlowCodec measures control-plane message encode/decode.
func BenchmarkOpenFlowCodec(b *testing.B) {
	fm := openflow.FlowMod{
		Command: openflow.FlowAdd, Priority: 100, IdleTimeoutMs: 2000,
		Match: openflow.Match{
			Fields: openflow.FieldInPort | openflow.FieldDlSrc | openflow.FieldDlDst | openflow.FieldEtherType,
			InPort: 3, DlSrc: packet.WorkerAddr(1, 1), DlDst: packet.WorkerAddr(1, 2),
			EtherType: packet.EtherType,
		},
		Actions: []openflow.Action{openflow.SetTunnelDst("h2"), openflow.Output(9)},
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		raw := openflow.Encode(uint32(i), fm)
		if _, _, err := openflow.Decode(raw); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkHashRouting measures the key-based routing decision (Listing 1).
func BenchmarkHashRouting(b *testing.B) {
	t := tuple.New(tuple.String("keyword"), tuple.Int(12345))
	fields := []int{0}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = tuple.HashFields(t, fields) % 8
	}
}

// --- scenario benchmarks: one full experiment per iteration ---------------
//
// These wrap the figure harnesses of internal/experiments so `go test
// -bench` regenerates the remaining evaluation results; each iteration runs
// the complete scenario (cluster up, fault/reconfiguration, teardown) and
// reports the scenario's key metric.

func scenarioParams() experiments.Params {
	return experiments.Params{Warmup: 500 * time.Millisecond, Measure: time.Second}
}

// BenchmarkFig10FaultRecovery reproduces Fig 10; the reported metric is
// Typhoon's post-fault throughput retention (paper: ~100% vs Storm ~50%).
func BenchmarkFig10FaultRecovery(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := experiments.Fig10(scenarioParams())
		if res.Err != nil {
			b.Fatal(res.Err)
		}
	}
}

// BenchmarkFig11AutoScale reproduces Fig 11 (auto scaling under overload).
func BenchmarkFig11AutoScale(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := experiments.Fig11(scenarioParams())
		if res.Err != nil {
			b.Fatal(res.Err)
		}
	}
}

// BenchmarkFig12LiveDebug reproduces Fig 12 (live debugging overhead).
func BenchmarkFig12LiveDebug(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := experiments.Fig12(scenarioParams())
		if res.Err != nil {
			b.Fatal(res.Err)
		}
	}
}

// BenchmarkFig14LogicSwap reproduces Fig 14 (runtime computation-logic
// update on the Yahoo pipeline).
func BenchmarkFig14LogicSwap(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := experiments.Fig14(scenarioParams())
		if res.Err != nil {
			b.Fatal(res.Err)
		}
	}
}

// BenchmarkTable5Debugger reproduces Table 5 (live debugger comparison).
func BenchmarkTable5Debugger(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := experiments.Table5(scenarioParams())
		if res.Err != nil {
			b.Fatal(res.Err)
		}
	}
}

// BenchmarkStableUpdate reproduces the §3.5 zero-loss reconfiguration
// experiment.
func BenchmarkStableUpdate(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := experiments.StableUpdate(scenarioParams())
		if res.Err != nil {
			b.Fatal(res.Err)
		}
	}
}

// BenchmarkRescale measures the managed stable rescale end to end: the
// conformance pipeline runs at speed while the stateful counter scales
// 2 -> 4 mid-stream; reported metrics are the source pause and the
// throughput dip across the rescale. With BENCH_JSON set in the
// environment, the per-run series is written to that file (CI uploads
// BENCH_rescale.json as an artifact).
func BenchmarkRescale(b *testing.B) {
	type run struct {
		PauseMs      float64 `json:"pauseMs"`
		DrainMs      float64 `json:"drainMs"`
		KeysMigrated int     `json:"keysMigrated"`
		StateBytes   int     `json:"stateBytes"`
		BeforeTPS    float64 `json:"beforeTuplesPerSec"`
		DuringTPS    float64 `json:"duringTuplesPerSec"`
		AfterTPS     float64 `json:"afterTuplesPerSec"`
	}
	rate := func(rec *conformance.Recorder, window time.Duration) float64 {
		n0 := rec.Total()
		t0 := time.Now()
		time.Sleep(window)
		return float64(rec.Total()-n0) / time.Since(t0).Seconds()
	}
	var runs []run
	for i := 0; i < b.N; i++ {
		p := &conformance.Params{
			Keys: 32, PerKey: 1 << 20, Window: 50, Seed: int64(42 + i),
			ThrottleEvery: 64, ThrottleDelay: time.Millisecond,
		}
		c, err := core.NewCluster(core.Config{
			Mode: core.ModeTyphoon, Hosts: []string{"h1", "h2"},
			DefaultBatchSize: 100,
		})
		if err != nil {
			b.Fatal(err)
		}
		rec := conformance.NewRecorder(*p, true)
		c.Env.Set(conformance.EnvParams, p)
		c.Env.Set(conformance.EnvRecorder, rec)
		tb := topology.NewBuilder("bench-rescale", 9)
		tb.Source("src", conformance.LogicTaggedSource, 1)
		tb.Node("count", conformance.LogicKeyedCounter, 2).Stateful().FieldsFrom("src", 0)
		tb.Node("sink", conformance.LogicRecordingSink, 1).GlobalFrom("count")
		l, err := tb.Build()
		if err != nil {
			b.Fatal(err)
		}
		if err := c.Submit(l, 15*time.Second); err != nil {
			b.Fatal(err)
		}
		deadline := time.Now().Add(15 * time.Second)
		for rec.Total() < 2000 {
			if time.Now().After(deadline) {
				b.Fatal("pipeline never reached speed")
			}
			time.Sleep(5 * time.Millisecond)
		}

		r := run{BeforeTPS: rate(rec, 300*time.Millisecond)}
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		n0 := rec.Total()
		t0 := time.Now()
		report, err := c.Rescale(ctx, "bench-rescale", "count", 4)
		cancel()
		if err != nil {
			b.Fatal(err)
		}
		r.DuringTPS = float64(rec.Total()-n0) / time.Since(t0).Seconds()
		r.AfterTPS = rate(rec, 300*time.Millisecond)
		r.PauseMs = float64(report.Pause.Microseconds()) / 1e3
		r.DrainMs = float64(report.Drain.Microseconds()) / 1e3
		r.KeysMigrated = report.KeysMigrated
		r.StateBytes = report.StateBytes
		runs = append(runs, r)
		c.Stop()
	}
	var pauseMs, dip float64
	for _, r := range runs {
		pauseMs += r.PauseMs
		if r.BeforeTPS > 0 {
			dip += 100 * (1 - r.DuringTPS/r.BeforeTPS)
		}
	}
	b.ReportMetric(pauseMs/float64(len(runs)), "pause-ms")
	b.ReportMetric(dip/float64(len(runs)), "dip-%")
	if path := os.Getenv("BENCH_JSON"); path != "" {
		blob, err := json.MarshalIndent(map[string]any{
			"benchmark": "BenchmarkRescale",
			"runs":      runs,
		}, "", "  ")
		if err != nil {
			b.Fatal(err)
		}
		if err := os.WriteFile(path, blob, 0o644); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFailover measures distributed control-plane failover end to
// end: a 3-instance replicated control plane drives the conformance
// pipeline at speed, the controller mastering h1 is killed, and the run
// reports how long the survivors took to claim its switches (lease TTL +
// campaign tick bound this), how many installed rules the new master had
// to reconcile, and how many data-plane frames were dropped across the
// failover — the zero-interruption target is exactly 0, because
// reconciliation reinstalls identical rules and never disturbs the hot
// flow caches. With BENCH_JSON set, the per-run series is written to that
// file (CI uploads BENCH_failover.json as an artifact).
func BenchmarkFailover(b *testing.B) {
	type run struct {
		FailoverMs       float64 `json:"failoverMs"`
		RulesReinstalled int     `json:"rulesReinstalled"`
		FramesDropped    uint64  `json:"framesDropped"`
		BeforeTPS        float64 `json:"beforeTuplesPerSec"`
		AfterTPS         float64 `json:"afterTuplesPerSec"`
	}
	hosts := []string{"h1", "h2"}
	dropped := func(c *core.Cluster) uint64 {
		var n uint64
		for _, h := range hosts {
			n += c.Host(h).Switch.CountersSnapshot().Dropped
		}
		return n
	}
	rate := func(rec *conformance.Recorder, window time.Duration) float64 {
		n0 := rec.Total()
		t0 := time.Now()
		time.Sleep(window)
		return float64(rec.Total()-n0) / time.Since(t0).Seconds()
	}
	var runs []run
	for i := 0; i < b.N; i++ {
		p := &conformance.Params{
			Keys: 32, PerKey: 1 << 20, Window: 50, Seed: int64(7 + i),
			ThrottleEvery: 64, ThrottleDelay: time.Millisecond,
		}
		c, err := core.NewCluster(core.Config{
			Mode: core.ModeTyphoon, Hosts: hosts,
			Controllers: 3, DefaultBatchSize: 100,
		})
		if err != nil {
			b.Fatal(err)
		}
		rec := conformance.NewRecorder(*p, true)
		c.Env.Set(conformance.EnvParams, p)
		c.Env.Set(conformance.EnvRecorder, rec)
		tb := topology.NewBuilder("bench-failover", 9)
		tb.Source("src", conformance.LogicTaggedSource, 1)
		tb.Node("count", conformance.LogicKeyedCounter, 2).Stateful().FieldsFrom("src", 0)
		tb.Node("sink", conformance.LogicRecordingSink, 1).GlobalFrom("count")
		l, err := tb.Build()
		if err != nil {
			b.Fatal(err)
		}
		if err := c.Submit(l, 15*time.Second); err != nil {
			b.Fatal(err)
		}
		deadline := time.Now().Add(15 * time.Second)
		for rec.Total() < 2000 {
			if time.Now().After(deadline) {
				b.Fatal("pipeline never reached speed")
			}
			time.Sleep(5 * time.Millisecond)
		}

		r := run{BeforeTPS: rate(rec, 300*time.Millisecond)}
		victim, epoch0, ok := c.MasterOf("h1")
		if !ok {
			b.Fatal("no master elected for h1")
		}
		mastered := make([]string, 0, len(hosts))
		for _, h := range hosts {
			if owner, _, ok := c.MasterOf(h); ok && owner == victim {
				mastered = append(mastered, h)
			}
		}
		drop0 := dropped(c)
		t0 := time.Now()
		if err := c.KillController(victim); err != nil {
			b.Fatal(err)
		}
		deadline = time.Now().Add(10 * time.Second)
		for {
			owner, epoch, ok := c.MasterOf("h1")
			if ok && owner != victim && epoch > epoch0 {
				break
			}
			if time.Now().After(deadline) {
				b.Fatal("h1 mastership never failed over")
			}
			time.Sleep(time.Millisecond)
		}
		r.FailoverMs = float64(time.Since(t0).Microseconds()) / 1e3
		for _, h := range mastered {
			r.RulesReinstalled += c.Host(h).Switch.RuleCount()
		}
		r.AfterTPS = rate(rec, 300*time.Millisecond)
		r.FramesDropped = dropped(c) - drop0
		if bad, n := rec.Violations(); n != 0 {
			b.Fatalf("%d conformance violations across failover (first: %v)", n, bad[0])
		}
		runs = append(runs, r)
		c.Stop()
	}
	var failMs float64
	var framesDropped uint64
	for _, r := range runs {
		failMs += r.FailoverMs
		framesDropped += r.FramesDropped
	}
	b.ReportMetric(failMs/float64(len(runs)), "failover-ms")
	b.ReportMetric(float64(framesDropped), "dropped-frames")
	if path := os.Getenv("BENCH_JSON"); path != "" {
		blob, err := json.MarshalIndent(map[string]any{
			"benchmark": "BenchmarkFailover",
			"runs":      runs,
		}, "", "  ")
		if err != nil {
			b.Fatal(err)
		}
		if err := os.WriteFile(path, blob, 0o644); err != nil {
			b.Fatal(err)
		}
	}
}

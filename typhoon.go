// Package typhoon is the public API of the Typhoon reproduction: an
// SDN-enhanced real-time stream processing framework (Cho et al.,
// CoNEXT 2017) implemented in pure Go.
//
// A Typhoon deployment consists of emulated compute hosts, each with a
// software SDN switch, connected by host-level TCP tunnels and programmed
// by a central SDN controller; stream topologies are built with a fluent
// builder, computation logic is registered by name, and running topologies
// can be reconfigured — parallelism, routing policies, even computation
// logic — without restarting (see DESIGN.md for the architecture map).
//
// Quick start:
//
//	typhoon.RegisterBolt("my/sink", func() typhoon.Bolt { return &sink{} })
//
//	cluster, _ := typhoon.NewCluster(typhoon.Config{Hosts: []string{"h1", "h2"}})
//	defer cluster.Stop()
//
//	b := typhoon.NewTopology("wordcount", 1)
//	b.Source("input", "workload/sentence-source", 1)
//	b.Node("count", "my/sink", 2).FieldsFrom("input", 0)
//	topo, _ := b.Build()
//	cluster.Submit(topo, 10*time.Second)
//
// The same Config with Mode set to ModeStorm builds the paper's baseline
// (application-level TCP routing) on identical substrate, which is how the
// evaluation harness in internal/experiments reproduces the paper's
// comparisons.
package typhoon

import (
	"typhoon/internal/chaos"
	"typhoon/internal/controller"
	"typhoon/internal/core"
	"typhoon/internal/topology"
	"typhoon/internal/tuple"
	"typhoon/internal/worker"
)

// Tuple model.
type (
	// Tuple is an ordered list of dynamically typed values on a stream.
	Tuple = tuple.Tuple
	// Value is one tuple field.
	Value = tuple.Value
	// StreamID identifies a logical stream.
	StreamID = tuple.StreamID
)

// Value constructors.
var (
	// Int builds an integer value.
	Int = tuple.Int
	// Float builds a float value.
	Float = tuple.Float
	// Bool builds a boolean value.
	Bool = tuple.Bool
	// String builds a string value.
	String = tuple.String
	// Bytes builds a byte-slice value.
	Bytes = tuple.Bytes
)

// Computation logic interfaces (the application computation layer).
type (
	// Component is the lifecycle shared by all logic.
	Component = worker.Component
	// Bolt consumes tuples.
	Bolt = worker.Bolt
	// Spout produces tuples.
	Spout = worker.Spout
	// Context gives logic its identity, emission and environment.
	Context = worker.Context
	// SharedEnv carries external services into components.
	SharedEnv = worker.SharedEnv
	// StatefulComponent is logic whose keyed state migrates during
	// managed stable rescales (§3.5).
	StatefulComponent = worker.StatefulComponent
	// KeyRange is a half-open partition interval [From, To) passed to
	// StatefulComponent snapshots.
	KeyRange = worker.KeyRange
)

// RegisterLogic installs a computation-logic factory under a name that
// topologies reference; re-registering a name hot-swaps the factory.
func RegisterLogic(name string, f func() Component) { worker.RegisterLogic(name, f) }

// RegisterBolt installs a bolt factory.
func RegisterBolt(name string, f func() Bolt) {
	worker.RegisterLogic(name, func() worker.Component { return f() })
}

// RegisterSpout installs a spout factory.
func RegisterSpout(name string, f func() Spout) {
	worker.RegisterLogic(name, func() worker.Component { return f() })
}

// Topology building.
type (
	// Topology is a validated logical topology.
	Topology = topology.Logical
	// TopologyBuilder assembles topologies fluently.
	TopologyBuilder = topology.Builder
	// NodeSpec declares one logical node.
	NodeSpec = topology.NodeSpec
	// RoutingPolicy selects tuple routing between nodes.
	RoutingPolicy = topology.RoutingPolicy
)

// QoS rate classes (multi-tenant QoS; see docs/QOS.md). Assign one with
// TopologyBuilder.QoS; topologies without a class are best-effort.
const (
	// QoSGuaranteed is never policed and drains first under contention.
	QoSGuaranteed = topology.QoSGuaranteed
	// QoSBurstable shares spare link capacity by demand.
	QoSBurstable = topology.QoSBurstable
	// QoSBestEffort (the default) shares a quarter of spare capacity.
	QoSBestEffort = topology.QoSBestEffort
)

// Routing policies (§2).
const (
	// Shuffle routes round robin.
	Shuffle = topology.Shuffle
	// Fields routes by key hash.
	Fields = topology.Fields
	// Global routes everything to instance 0.
	Global = topology.Global
	// All broadcasts to every instance (network-level replication in
	// Typhoon mode).
	All = topology.All
	// SDNBalanced lets switch select-groups pick destinations.
	SDNBalanced = topology.SDNBalanced
)

// NewTopology starts a topology with a name and application ID.
func NewTopology(name string, app uint16) *TopologyBuilder {
	return topology.NewBuilder(name, app)
}

// Cluster deployment.
type (
	// Cluster is a running deployment.
	Cluster = core.Cluster
	// Config describes a deployment. A Config value is itself an Option,
	// so the struct-literal call style keeps working alongside With*.
	Config = core.Config
	// Mode selects the data plane.
	Mode = core.Mode
	// Option configures NewCluster.
	Option = core.Option
	// QoSConfig enables and sizes multi-tenant QoS (Config.QoS).
	QoSConfig = core.QoSConfig
)

// Deployment modes.
const (
	// ModeTyphoon runs the SDN data plane (default).
	ModeTyphoon = core.ModeTyphoon
	// ModeStorm runs the application-level TCP baseline.
	ModeStorm = core.ModeStorm
)

// Cluster options. Each documents its default in internal/core.
var (
	// WithMode selects the data plane (default ModeTyphoon).
	WithMode = core.WithMode
	// WithHosts names the emulated compute hosts (required).
	WithHosts = core.WithHosts
	// WithScheduler sets the placement scheduler (default round robin).
	WithScheduler = core.WithScheduler
	// WithHeartbeatTimeout sets the manager's worker-failure timeout.
	WithHeartbeatTimeout = core.WithHeartbeatTimeout
	// WithMonitorInterval sets the heartbeat scan period (default off).
	WithMonitorInterval = core.WithMonitorInterval
	// WithHeartbeatInterval sets the agents' heartbeat report period.
	WithHeartbeatInterval = core.WithHeartbeatInterval
	// WithDefaultBatchSize sets the worker I/O batch size.
	WithDefaultBatchSize = core.WithDefaultBatchSize
	// WithAckTimeout enables guaranteed processing with a replay timeout.
	WithAckTimeout = core.WithAckTimeout
	// WithSwitchRingCapacity sizes switch port rings.
	WithSwitchRingCapacity = core.WithSwitchRingCapacity
	// WithDrainDelay sets the agents' stable-removal drain window.
	WithDrainDelay = core.WithDrainDelay
	// WithRestartDelay spaces local restarts of crashed workers.
	WithRestartDelay = core.WithRestartDelay
	// WithRuleIdleTimeout ages out flow rules (ablation knob).
	WithRuleIdleTimeout = core.WithRuleIdleTimeout
	// WithOnWorkerCrash observes worker crashes.
	WithOnWorkerCrash = core.WithOnWorkerCrash
	// WithTraceEvery samples one in n frames for tuple-path tracing.
	WithTraceEvery = core.WithTraceEvery
	// WithControllers runs n replicated SDN controllers with
	// coordinator-elected per-switch mastership (default: one standalone).
	WithControllers = core.WithControllers
	// WithQoS enables multi-tenant QoS: per-topology meters, weighted
	// egress queues, and the online bandwidth allocator (docs/QOS.md).
	WithQoS = core.WithQoS
	// WithChaos schedules a fault-injection plan (see package chaos).
	WithChaos = core.WithChaos
)

// NewCluster builds and starts a cluster. It accepts either a single
// Config literal (legacy style) or any combination of With* options:
//
//	typhoon.NewCluster(typhoon.WithHosts("h1", "h2"), typhoon.WithChaos(plan))
func NewCluster(options ...Option) (*Cluster, error) { return core.NewCluster(options...) }

// Fault injection (chaos engineering).
type (
	// ChaosPlan is an ordered, clock-driven fault schedule.
	ChaosPlan = chaos.Plan
	// ChaosEvent is one scheduled fault.
	ChaosEvent = chaos.Event
	// ChaosSpec declares one fault to inject.
	ChaosSpec = chaos.Spec
	// ChaosKind selects the fault class of a ChaosSpec.
	ChaosKind = chaos.Kind
)

// SDN control plane applications (§4).
type (
	// FaultDetector reroutes around dead workers on port-removal events.
	FaultDetector = controller.FaultDetector
	// AutoScaler scales nodes from pushed worker statistics.
	AutoScaler = controller.AutoScaler
	// AutoScalePolicy configures the auto-scaler.
	AutoScalePolicy = controller.AutoScalePolicy
	// LiveDebugger taps workers with switch-level frame mirroring.
	LiveDebugger = controller.LiveDebugger
	// LoadBalancer adjusts SDN select-group weights.
	LoadBalancer = controller.LoadBalancer
	// MetricsCollector caches worker statistics for the observability
	// layer (a cluster adds one automatically in Typhoon mode).
	MetricsCollector = controller.MetricsCollector
	// RescaleReport describes one completed managed stable rescale
	// (§3.5), as returned by Cluster.Rescale.
	RescaleReport = controller.RescaleReport
)

// App constructors.
var (
	// NewFaultDetector builds the fault-detector app.
	NewFaultDetector = controller.NewFaultDetector
	// NewAutoScaler builds the auto-scaler app.
	NewAutoScaler = controller.NewAutoScaler
	// NewLiveDebugger builds the live-debugger app.
	NewLiveDebugger = controller.NewLiveDebugger
	// NewLoadBalancer builds the SDN load-balancer app.
	NewLoadBalancer = controller.NewLoadBalancer
)

package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"typhoon/internal/apiclient"
	"typhoon/internal/chaos"
	"typhoon/internal/topology"
)

// runChaos drives the cluster's fault-injection engine over the API's
// /api/v1/chaos route. Positional operands come first, option flags after:
//
//	typhoon-ctl chaos partition h1 h2 -for 5s
//	typhoon-ctl chaos crash wordcount 3
//	typhoon-ctl chaos log
func runChaos(cl *apiclient.Client, args []string) {
	if len(args) == 0 {
		chaosUsage()
	}
	verb, rest := args[0], args[1:]
	if verb == "log" {
		runChaosLog(cl)
		return
	}

	// Split "chaos VERB POS... -flag..." into positionals and flags.
	var pos []string
	for len(rest) > 0 && !strings.HasPrefix(rest[0], "-") {
		pos, rest = append(pos, rest[0]), rest[1:]
	}
	fs := flag.NewFlagSet("chaos "+verb, flag.ExitOnError)
	dur := fs.Duration("for", 0, "bounded fault window; reverses automatically")
	drop := fs.Float64("drop", 0, "netem: drop probability in [0,1]")
	latency := fs.Duration("latency", 0, "netem: fixed one-way frame delay")
	jitter := fs.Duration("jitter", 0, "netem: random extra delay bound")
	delay := fs.Duration("delay", 0, "slow / packet-out-delay: per-operation delay")
	fs.Parse(rest)

	s := chaos.Spec{Duration: *dur}
	switch verb {
	case "partition":
		needChaos(pos, 2, "chaos partition HOST PEER [-for D]")
		s.Kind, s.Host, s.Peer = chaos.KindPartition, pos[0], pos[1]
	case "heal":
		s.Kind = chaos.KindHeal
		if len(pos) == 2 {
			s.Host, s.Peer = pos[0], pos[1]
		} else if len(pos) != 0 {
			needChaos(pos, 2, "chaos heal [HOST PEER]")
		}
	case "netem":
		needChaos(pos, 2, "chaos netem HOST PEER [-drop P] [-latency D] [-jitter D]")
		s.Kind, s.Host, s.Peer = chaos.KindNetem, pos[0], pos[1]
		s.DropRate, s.Latency, s.Jitter = *drop, *latency, *jitter
	case "crash":
		needChaos(pos, 2, "chaos crash TOPO WORKER")
		s.Kind, s.Topo, s.Worker = chaos.KindWorkerCrash, pos[0], chaosWorkerID(pos[1])
	case "hang":
		needChaos(pos, 2, "chaos hang TOPO WORKER -for D")
		s.Kind, s.Topo, s.Worker = chaos.KindWorkerHang, pos[0], chaosWorkerID(pos[1])
	case "slow":
		needChaos(pos, 2, "chaos slow TOPO WORKER [-delay D]")
		s.Kind, s.Topo, s.Worker = chaos.KindWorkerSlow, pos[0], chaosWorkerID(pos[1])
		s.Delay = *delay
	case "port-down":
		needChaos(pos, 2, "chaos port-down TOPO WORKER")
		s.Kind, s.Topo, s.Worker = chaos.KindPortDown, pos[0], chaosWorkerID(pos[1])
	case "wipe-flows":
		needChaos(pos, 1, "chaos wipe-flows HOST")
		s.Kind, s.Host = chaos.KindWipeFlows, pos[0]
	case "outage":
		s.Kind = chaos.KindControllerOutage
	case "controller-kill":
		needChaos(pos, 1, "chaos controller-kill CONTROLLER")
		s.Kind, s.Controller = chaos.KindControllerKill, pos[0]
	case "restore":
		s.Kind = chaos.KindControllerRestore
	case "packet-out-delay":
		s.Kind, s.Delay = chaos.KindPacketOutDelay, *delay
	default:
		chaosUsage()
	}
	if err := s.Validate(); err != nil {
		fatal(err)
	}

	applied, err := cl.ChaosApply(s)
	if err != nil {
		fatal(err)
	}
	if applied == "" {
		applied = s.String()
	}
	fmt.Println("injected:", applied)
}

// runChaosLog prints the engine's injection record, oldest first.
func runChaosLog(cl *apiclient.Client) {
	log, err := cl.ChaosLog()
	if err != nil {
		fatal(err)
	}
	if len(log) == 0 {
		fmt.Println("no injections recorded")
		return
	}
	for _, inj := range log {
		fmt.Printf("%s  %s", inj.At.Format(time.TimeOnly), inj.Spec)
		if inj.Detail != "" {
			fmt.Printf("  (%s)", inj.Detail)
		}
		fmt.Println()
	}
}

func chaosWorkerID(s string) topology.WorkerID {
	n, err := strconv.ParseUint(s, 10, 32)
	if err != nil {
		fatal(fmt.Errorf("bad worker id %q: %w", s, err))
	}
	return topology.WorkerID(n)
}

func needChaos(pos []string, n int, usage string) {
	if len(pos) != n {
		fmt.Fprintln(os.Stderr, "usage: typhoon-ctl [flags]", usage)
		os.Exit(2)
	}
}

func chaosUsage() {
	fmt.Fprintln(os.Stderr, `usage: typhoon-ctl [flags] chaos VERB ...
verbs:
  partition HOST PEER [-for D]                   cut both tunnel directions
  heal [HOST PEER]                               lift one partition, or all impairments
  netem HOST PEER [-drop P] [-latency D] [-jitter D]
                                                 degrade a link without cutting it
  crash TOPO WORKER                              kill one worker (agent restarts it)
  hang TOPO WORKER -for D                        stall a worker's execute loop
  slow TOPO WORKER [-delay D]                    per-tuple delay (0 restores)
  port-down TOPO WORKER                          remove the worker's switch port (§4 fast path)
  wipe-flows HOST                                clear a switch's flow table
  outage [-for D]                                take the SDN controller offline
  restore                                        bring the controller back
  controller-kill CONTROLLER                     permanently stop one replicated controller
                                                 (per-switch mastership fails over)
  packet-out-delay [-delay D]                    delay controller PacketOut operations
  log                                            print the injection record`)
	os.Exit(2)
}

package main

import (
	"fmt"
	"os"
	"sort"
	"strconv"
	"text/tabwriter"

	"typhoon/internal/apiclient"
)

// runQoS inspects and reconfigures multi-tenant QoS through the API's
// /api/v1/qos route:
//
//	typhoon-ctl qos status
//	typhoon-ctl qos set wordcount guaranteed 8000000
//
// "status" renders the per-topology rate-class assignment (with the
// bandwidth allocator's current per-host meter rates) and each host's
// meter and egress-queue counters. "set" reassigns a running topology's
// class and, optionally, its configured bandwidth in bytes/s; omitting
// the rate leaves the actual rate to the online allocator.
func runQoS(cl *apiclient.Client, args []string) {
	if len(args) == 0 {
		qosUsage()
	}
	switch args[0] {
	case "status":
		runQoSStatus(cl)
	case "set":
		if len(args) != 3 && len(args) != 4 {
			qosUsage()
		}
		topo, class := args[1], args[2]
		var rate uint64
		if len(args) == 4 {
			parsed, err := strconv.ParseUint(args[3], 10, 64)
			if err != nil {
				fatal(fmt.Errorf("bad rate %q (bytes/s): %w", args[3], err))
			}
			rate = parsed
		}
		if err := cl.QoSSet(topo, class, rate); err != nil {
			fatal(err)
		}
		if rate > 0 {
			fmt.Printf("topology %s is now %s at %d B/s\n", topo, class, rate)
		} else {
			fmt.Printf("topology %s is now %s (rate managed by the allocator)\n", topo, class)
		}
	default:
		qosUsage()
	}
}

func runQoSStatus(cl *apiclient.Client) {
	st, err := cl.QoS()
	if err != nil {
		fatal(err)
	}
	if !st.Enabled {
		fmt.Println("QoS is not enabled on this cluster (start it with core.WithQoS)")
		return
	}
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "TOPOLOGY\tCLASS\tCONFIGURED\tALLOCATED (host=B/s)")
	for _, t := range st.Topologies {
		conf := "-"
		if t.ConfiguredBps > 0 {
			conf = strconv.FormatUint(t.ConfiguredBps, 10)
		}
		hosts := make([]string, 0, len(t.HostRates))
		for h := range t.HostRates {
			hosts = append(hosts, h)
		}
		sort.Strings(hosts)
		alloc := ""
		for i, h := range hosts {
			if i > 0 {
				alloc += " "
			}
			if r := t.HostRates[h]; r == 0 {
				alloc += h + "=unmetered"
			} else {
				alloc += h + "=" + strconv.FormatUint(r, 10)
			}
		}
		if alloc == "" {
			alloc = "-"
		}
		fmt.Fprintf(w, "%s\t%s\t%s\t%s\n", t.Topology, t.Class, conf, alloc)
	}
	fmt.Fprintln(w, "\nHOST\tMETER DROPS\tQUEUE\tDEPTH\tENQ\tDROP")
	for _, h := range st.Hosts {
		if len(h.Queues) == 0 {
			fmt.Fprintf(w, "%s\t%d\t-\t-\t-\t-\n", h.Host, h.MeterDrops)
			continue
		}
		for i, q := range h.Queues {
			host, drops := "", ""
			if i == 0 {
				host = h.Host
				drops = strconv.FormatUint(h.MeterDrops, 10)
			}
			fmt.Fprintf(w, "%s\t%s\t%s\t%d\t%d\t%d\n",
				host, drops, q.Class, q.Depth, q.Enqueued, q.Dropped)
		}
	}
	w.Flush()
}

func qosUsage() {
	fmt.Fprintln(os.Stderr, `usage: typhoon-ctl [flags] qos VERB ...
verbs:
  status                      per-topology classes, allocator rates, meter/queue stats
  set TOPO CLASS [RATE_BPS]   reassign a topology's rate class
                              (classes: guaranteed | burstable | best-effort;
                               omit RATE_BPS to let the allocator set meter rates)`)
	os.Exit(2)
}

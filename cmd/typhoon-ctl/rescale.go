package main

import (
	"fmt"
	"os"
	"strconv"
	"time"

	"typhoon/internal/apiclient"
)

// runRescale triggers a managed stable rescale (§3.5) through the API's
// /api/v1/rescale route and prints the report:
//
//	typhoon-ctl -metrics-addr 127.0.0.1:9090 rescale wordcount count 4
//
// Unlike the coordinator-level "scale" verb, which only rewrites the
// logical topology, this runs the full three-phase protocol: pause and
// drain sources, migrate keyed state onto the new instance set, reprogram
// flow rules, and resume.
func runRescale(cl *apiclient.Client, args []string) {
	if len(args) < 3 {
		fmt.Fprintln(os.Stderr, "usage: typhoon-ctl [flags] rescale TOPO NODE N [TIMEOUT]")
		os.Exit(2)
	}
	parallelism, err := strconv.Atoi(args[2])
	if err != nil {
		fatal(fmt.Errorf("bad parallelism %q: %w", args[2], err))
	}
	var timeout time.Duration
	if len(args) >= 4 {
		timeout, err = time.ParseDuration(args[3])
		if err != nil {
			fatal(fmt.Errorf("bad timeout %q: %w", args[3], err))
		}
	}
	report, err := cl.Rescale(args[0], args[1], parallelism, timeout)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("rescaled %s/%s %d -> %d (generation %d)\n",
		report.Topology, report.Node, report.From, report.To, report.Generation)
	fmt.Printf("  paused  %v (drain %v)\n", report.Pause, report.Drain)
	fmt.Printf("  state   %d key(s), %d byte(s) migrated\n",
		report.KeysMigrated, report.StateBytes)
}

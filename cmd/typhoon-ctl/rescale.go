package main

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"os"
	"strconv"
	"strings"
	"time"
)

// runRescale triggers a managed stable rescale (§3.5) through the
// observability endpoint's /api/rescale route and prints the report:
//
//	typhoon-ctl -metrics-addr 127.0.0.1:9090 rescale wordcount count 4
//
// Unlike the coordinator-level "scale" verb, which only rewrites the
// logical topology, this runs the full three-phase protocol: pause and
// drain sources, migrate keyed state onto the new instance set, reprogram
// flow rules, and resume.
func runRescale(addr string, args []string) {
	if len(args) < 3 {
		fmt.Fprintln(os.Stderr, "usage: typhoon-ctl [flags] rescale TOPO NODE N [TIMEOUT]")
		os.Exit(2)
	}
	if _, err := strconv.Atoi(args[2]); err != nil {
		fatal(fmt.Errorf("bad parallelism %q: %w", args[2], err))
	}
	q := url.Values{}
	q.Set("topo", args[0])
	q.Set("node", args[1])
	q.Set("parallelism", args[2])
	clientTimeout := 35 * time.Second
	if len(args) >= 4 {
		d, err := time.ParseDuration(args[3])
		if err != nil {
			fatal(fmt.Errorf("bad timeout %q: %w", args[3], err))
		}
		q.Set("timeout", args[3])
		clientTimeout = d + 5*time.Second
	}
	cl := &http.Client{Timeout: clientTimeout}
	resp, err := cl.Post("http://"+addr+"/api/rescale?"+q.Encode(), "application/json", nil)
	if err != nil {
		fatal(fmt.Errorf("cannot reach rescale endpoint (%w); is typhoon-cluster running with -metrics?", err))
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusOK {
		fatal(fmt.Errorf("rescale endpoint returned %s: %s", resp.Status, strings.TrimSpace(string(body))))
	}
	var report struct {
		Topology     string `json:"topology"`
		Node         string `json:"node"`
		From         int    `json:"from"`
		To           int    `json:"to"`
		PauseNanos   int64  `json:"pauseNanos"`
		DrainNanos   int64  `json:"drainNanos"`
		KeysMigrated int    `json:"keysMigrated"`
		StateBytes   int    `json:"stateBytes"`
		Generation   int64  `json:"generation"`
	}
	if err := json.Unmarshal(body, &report); err != nil {
		fatal(err)
	}
	fmt.Printf("rescaled %s/%s %d -> %d (generation %d)\n",
		report.Topology, report.Node, report.From, report.To, report.Generation)
	fmt.Printf("  paused  %v (drain %v)\n",
		time.Duration(report.PauseNanos), time.Duration(report.DrainNanos))
	fmt.Printf("  state   %d key(s), %d byte(s) migrated\n",
		report.KeysMigrated, report.StateBytes)
}

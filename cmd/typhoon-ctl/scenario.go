package main

import (
	"fmt"
	"os"
	"time"

	"typhoon/internal/apiclient"
	"typhoon/internal/scenario"
)

// runScenario drives the declarative scenario harness through
// /api/v1/scenario:
//
//	typhoon-ctl scenario run examples/scenarios/chaos-soak.json
//	typhoon-ctl scenario run spec.json -duration 2m -out BENCH_e2e.json
//
// The spec is validated locally before anything hits the wire, the run
// executes on the cluster, and the full report (percentile trajectories
// included) is written to the -out file while a digest goes to stdout.
// The exit status is non-zero when any conformance invariant failed.
func runScenario(cl *apiclient.Client, args []string) {
	if len(args) < 2 || args[0] != "run" {
		fmt.Fprintln(os.Stderr, "usage: typhoon-ctl [flags] scenario run SPEC.json [-duration D] [-out FILE]")
		os.Exit(2)
	}
	specPath := args[1]
	out := "BENCH_e2e.json"
	var duration time.Duration
	rest := args[2:]
	for i := 0; i < len(rest); i++ {
		switch rest[i] {
		case "-duration":
			if i+1 >= len(rest) {
				fatal(fmt.Errorf("-duration needs a value"))
			}
			d, err := time.ParseDuration(rest[i+1])
			if err != nil {
				fatal(fmt.Errorf("bad duration %q: %w", rest[i+1], err))
			}
			duration = d
			i++
		case "-out":
			if i+1 >= len(rest) {
				fatal(fmt.Errorf("-out needs a value"))
			}
			out = rest[i+1]
			i++
		default:
			fatal(fmt.Errorf("unknown scenario flag %q", rest[i]))
		}
	}
	raw, err := os.ReadFile(specPath)
	if err != nil {
		fatal(err)
	}
	// Validate locally so a typo fails in milliseconds, not after a
	// round trip to a busy cluster.
	if _, err := scenario.ParseSpec(raw); err != nil {
		fatal(err)
	}
	report, err := cl.ScenarioRun(raw, duration)
	if err != nil {
		fatal(err)
	}
	if err := os.WriteFile(out, report.JSON(), 0o644); err != nil {
		fatal(err)
	}
	fmt.Print(report.Summary())
	fmt.Printf("report written to %s\n", out)
	if !report.OK {
		os.Exit(1)
	}
}

package main

import (
	"fmt"
	"os"
	"strconv"
	"text/tabwriter"
	"time"

	"typhoon/internal/apiclient"
)

// runBatch inspects and retunes the data plane's batching knobs through the
// API's /api/v1/batch route:
//
//	typhoon-ctl batch get
//	typhoon-ctl batch set 256 2ms
//
// "get" renders the defaults new workers inherit (batch size and flush
// deadline) plus each host's realized occupancy — tuples per emitted frame.
// "set" takes a batch size, a flush deadline (Go duration), or both; "-"
// leaves a knob unchanged, and a negative deadline disables the bounded
// staging wait entirely.
func runBatch(cl *apiclient.Client, args []string) {
	if len(args) == 0 {
		batchUsage()
	}
	switch args[0] {
	case "get", "status":
		runBatchGet(cl)
	case "set":
		if len(args) < 2 || len(args) > 3 {
			batchUsage()
		}
		var size int
		if args[1] != "-" {
			parsed, err := strconv.Atoi(args[1])
			if err != nil || parsed <= 0 {
				fatal(fmt.Errorf("bad batch size %q (positive integer or -)", args[1]))
			}
			size = parsed
		}
		var deadline time.Duration
		if len(args) == 3 && args[2] != "-" {
			parsed, err := time.ParseDuration(args[2])
			if err != nil || parsed == 0 {
				fatal(fmt.Errorf("bad flush deadline %q (Go duration; negative disables): %v", args[2], err))
			}
			deadline = parsed
		}
		if size == 0 && deadline == 0 {
			batchUsage()
		}
		if err := cl.BatchSet(size, deadline); err != nil {
			fatal(err)
		}
		switch {
		case size > 0 && deadline != 0:
			fmt.Printf("batch size is now %d, flush deadline %s\n", size, deadlineString(deadline))
		case size > 0:
			fmt.Printf("batch size is now %d\n", size)
		default:
			fmt.Printf("flush deadline is now %s\n", deadlineString(deadline))
		}
	default:
		batchUsage()
	}
}

func runBatchGet(cl *apiclient.Client) {
	st, err := cl.Batch()
	if err != nil {
		fatal(err)
	}
	fmt.Printf("default batch size: %d\n", st.DefaultSize)
	fmt.Printf("flush deadline:     %s\n", deadlineString(time.Duration(st.FlushDeadlineNs)))
	if len(st.Hosts) == 0 {
		return
	}
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "\nHOST\tWORKERS\tTUPLES SENT\tFRAMES SENT\tTUPLES/FRAME")
	for _, h := range st.Hosts {
		fmt.Fprintf(w, "%s\t%d\t%d\t%d\t%.1f\n",
			h.Host, h.Workers, h.TuplesSent, h.FramesSent, h.BatchOccupancy)
	}
	w.Flush()
}

func deadlineString(d time.Duration) string {
	if d < 0 {
		return "disabled"
	}
	return d.String()
}

func batchUsage() {
	fmt.Fprintln(os.Stderr, `usage: typhoon-ctl [flags] batch VERB ...
verbs:
  get                  batching defaults and realized per-host occupancy
  set SIZE [DEADLINE]  retune batch size and/or flush deadline cluster-wide
                       (SIZE "-" leaves the size unchanged; DEADLINE is a Go
                        duration like 2ms, negative disables the deadline)`)
	os.Exit(2)
}

package main

import (
	"fmt"
	"os"
	"os/signal"
	"syscall"
	"text/tabwriter"
	"time"

	"typhoon/internal/apiclient"
	"typhoon/internal/observe"
	"typhoon/internal/packet"
)

// runMetrics dumps the cluster's Prometheus exposition to stdout.
func runMetrics(cl *apiclient.Client) {
	body, err := cl.MetricsText()
	if err != nil {
		fatal(err)
	}
	os.Stdout.Write(body)
}

// runTop renders the live cluster table, refreshing until interrupted.
// Every request makes the controller issue a METRIC_REQ sweep, so the
// worker rows track the data plane live.
func runTop(cl *apiclient.Client, interval time.Duration, once bool) {
	if interval <= 0 {
		interval = 2 * time.Second
	}
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
	for {
		snap, err := cl.Top()
		if err != nil {
			fatal(err)
		}
		if !once {
			fmt.Print("\033[2J\033[H") // clear screen, cursor home
		}
		printTop(snap)
		if once {
			return
		}
		select {
		case <-sig:
			return
		case <-time.After(interval):
		}
	}
}

func printTop(snap observe.TopSnapshot) {
	fmt.Printf("typhoon top — %s\n\n", snap.At.Format(time.TimeOnly))
	tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "SWITCH\tPORTS\tRULES\tRX\tTX\tFWD\tREPL\tDROP")
	for _, s := range snap.Switches {
		fmt.Fprintf(tw, "%s\t%d\t%d\t%d\t%d\t%d\t%d\t%d\n",
			s.Host, s.Ports, s.Rules, s.RxFrames, s.TxFrames, s.Forwarded, s.Replicated, s.Dropped)
	}
	fmt.Fprintln(tw, "\t\t\t\t\t\t\t")
	fmt.Fprintln(tw, "TOPO\tNODE\tWORKER\tHOST\tQUEUE\tPROC\tEMIT\tDROP\tAGE")
	for _, w := range snap.Workers {
		fmt.Fprintf(tw, "%s\t%s\t%d\t%s\t%d\t%d\t%d\t%d\t%.1fs\n",
			w.Topo, w.Node, w.Worker, w.Host, w.QueueLen, w.Processed, w.Emitted, w.Dropped, w.AgeSecs)
	}
	tw.Flush()
}

// runTrace prints recent completed tuple-path traces, one hop chain per
// trace: spout emit → switch ingress → rule match → egress/tunnel →
// sink dequeue.
func runTrace(cl *apiclient.Client, n int) {
	traces, err := cl.Traces(n)
	if err != nil {
		fatal(err)
	}
	if len(traces) == 0 {
		fmt.Println("no traces recorded yet (is the topology running and tracing enabled?)")
		return
	}
	for _, tr := range traces {
		fmt.Printf("trace %d  e2e %.3fms  completed %s\n",
			tr.ID, tr.E2ESeconds()*1e3, tr.CompletedAt.Format(time.TimeOnly))
		var base int64
		for _, h := range tr.Hops {
			if base == 0 {
				base = h.At
			}
			label := "detail"
			switch packet.HopKind(h.Kind) {
			case packet.HopEmit, packet.HopDequeue:
				label = "tuples" // batch frames: Detail carries the tuple count
			}
			fmt.Printf("  +%8.3fms  %-10s actor=%d %s=%d\n",
				float64(h.At-base)/1e6, packet.HopKind(h.Kind).String(), h.Actor, label, h.Detail)
		}
	}
}

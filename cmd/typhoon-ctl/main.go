// Command typhoon-ctl inspects and reconfigures a running cluster through
// its coordinator's TCP endpoint — the dynamic topology manager operations
// of §3.2 from another process — and observes it through the cluster's
// versioned observability API (/api/v1, spoken via internal/apiclient).
//
//	typhoon-ctl -coordinator 127.0.0.1:7000 list
//	typhoon-ctl -coordinator 127.0.0.1:7000 describe wordcount
//	typhoon-ctl -coordinator 127.0.0.1:7000 scale wordcount split 4
//	typhoon-ctl -coordinator 127.0.0.1:7000 swap wordcount split workload/splitter
//	typhoon-ctl -coordinator 127.0.0.1:7000 kill wordcount
//	typhoon-ctl -metrics-addr 127.0.0.1:9090 metrics
//	typhoon-ctl -metrics-addr 127.0.0.1:9090 top
//	typhoon-ctl -metrics-addr 127.0.0.1:9090 trace
//	typhoon-ctl -metrics-addr 127.0.0.1:9090 chaos partition h1 h2 -for 5s
//	typhoon-ctl -metrics-addr 127.0.0.1:9090 chaos crash wordcount 3
//	typhoon-ctl -metrics-addr 127.0.0.1:9090 chaos log
//	typhoon-ctl -metrics-addr 127.0.0.1:9090 rescale wordcount count 4
//	typhoon-ctl -metrics-addr 127.0.0.1:9090 controlplane status
//	typhoon-ctl -metrics-addr 127.0.0.1:9090 qos status
//	typhoon-ctl -metrics-addr 127.0.0.1:9090 qos set wordcount guaranteed
//
// Reconfigurations work because the streaming manager's logic runs against
// the coordinator API: this binary embeds a manager speaking to the remote
// store, and the cluster's controller and agents converge on the updated
// global state exactly as for in-process requests. The observability
// subcommands poll typhoon-cluster's -metrics endpoint; every /api/v1/top
// request makes the controller issue a METRIC_REQ sweep through the
// control-tuple path, so the rendered table is live.
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"time"

	"typhoon/internal/apiclient"
	"typhoon/internal/coordinator"
	"typhoon/internal/manager"
	"typhoon/internal/paths"
)

func main() {
	addr := flag.String("coordinator", "127.0.0.1:7000", "coordinator TCP address")
	metricsAddr := flag.String("metrics-addr", "127.0.0.1:9090", "cluster observability HTTP address")
	once := flag.Bool("once", false, "top: print one snapshot instead of refreshing")
	interval := flag.Duration("interval", 2*time.Second, "top: refresh period")
	count := flag.Int("n", 10, "trace: number of recent traces to show")
	flag.Parse()
	args := flag.Args()
	if len(args) == 0 {
		usage()
	}

	api := apiclient.New(*metricsAddr)
	switch args[0] {
	case "metrics":
		runMetrics(api)
		return
	case "top":
		runTop(api, *interval, *once)
		return
	case "trace":
		runTrace(api, *count)
		return
	case "chaos":
		runChaos(api, args[1:])
		return
	case "rescale":
		runRescale(api, args[1:])
		return
	case "controlplane":
		runControlPlane(api, args[1:])
		return
	case "qos":
		runQoS(api, args[1:])
		return
	case "batch":
		runBatch(api, args[1:])
		return
	case "scenario":
		runScenario(api, args[1:])
		return
	}

	cli, err := coordinator.Dial(*addr)
	if err != nil {
		fatal(err)
	}
	defer cli.Close()
	mgr := manager.New(cli, manager.Options{})
	defer mgr.Stop()

	switch args[0] {
	case "list":
		names, err := cli.Children(paths.Topologies)
		if err != nil {
			fatal(err)
		}
		for _, n := range names {
			fmt.Println(n)
		}
	case "describe":
		need(args, 2)
		l, p, err := mgr.Describe(args[1])
		if err != nil {
			fatal(err)
		}
		fmt.Printf("topology %s (app %d, generation %d)\n", l.Name, l.App, l.Generation)
		for _, n := range l.Nodes {
			fmt.Printf("  node %-16s logic=%s parallelism=%d", n.Name, n.Logic, n.Parallelism)
			if n.Source {
				fmt.Print(" [source]")
			}
			if n.Stateful {
				fmt.Print(" [stateful]")
			}
			fmt.Println()
		}
		for _, e := range l.Edges {
			fmt.Printf("  edge %s -> %s (%s)\n", e.From, e.To, e.Policy)
		}
		for _, a := range p.Workers {
			fmt.Printf("  worker %-4d %-16s host=%s port=%d\n", a.Worker, a.Node, a.Host, a.Port)
		}
	case "scale":
		need(args, 4)
		n, err := strconv.Atoi(args[3])
		if err != nil {
			fatal(err)
		}
		if err := mgr.SetParallelism(args[1], args[2], n); err != nil {
			fatal(err)
		}
		fmt.Printf("node %s of %s scaled to %d\n", args[2], args[1], n)
	case "swap":
		need(args, 4)
		if err := mgr.SwapLogic(args[1], args[2], args[3]); err != nil {
			fatal(err)
		}
		fmt.Printf("node %s of %s now runs %s\n", args[2], args[1], args[3])
	case "kill":
		need(args, 2)
		if err := mgr.Kill(args[1]); err != nil {
			fatal(err)
		}
		fmt.Printf("topology %s killed\n", args[1])
	default:
		usage()
	}
}

func need(args []string, n int) {
	if len(args) < n {
		usage()
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: typhoon-ctl [flags] {list | describe T | scale T NODE N | swap T NODE LOGIC | kill T | metrics | top | trace | chaos ... | rescale T NODE N [TIMEOUT] | controlplane status | qos {status | set T CLASS [RATE]} | batch {get | set SIZE [DEADLINE]} | scenario run SPEC.json [-duration D] [-out FILE]}")
	os.Exit(2)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "typhoon-ctl:", err)
	os.Exit(1)
}

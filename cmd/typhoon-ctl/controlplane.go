package main

import (
	"fmt"
	"os"
	"text/tabwriter"

	"typhoon/internal/apiclient"
)

// runControlPlane renders the replicated control plane's state from the
// API's /api/v1/controlplane route:
//
//	typhoon-ctl -metrics-addr 127.0.0.1:9090 controlplane status
//
// The output is two tables — controller registrations (with heartbeat
// liveness) and per-switch mastership leases (owner + fencing epoch).
// Both are empty for a standalone single-controller cluster.
func runControlPlane(cl *apiclient.Client, args []string) {
	if len(args) < 1 || args[0] != "status" {
		fmt.Fprintln(os.Stderr, "usage: typhoon-ctl [flags] controlplane status")
		os.Exit(2)
	}
	info, err := cl.ControlPlane()
	if err != nil {
		fatal(err)
	}
	if len(info.Controllers) == 0 && len(info.Masters) == 0 {
		fmt.Println("standalone control plane (no replicated controllers registered)")
		return
	}
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "CONTROLLER\tADDR\tLIVE\tHEARTBEAT")
	for _, c := range info.Controllers {
		live := "yes"
		if !c.Live {
			live = "NO"
		}
		fmt.Fprintf(w, "%s\t%s\t%s\t%dms ago\n", c.ID, c.Addr, live, c.AgeMillis)
	}
	fmt.Fprintln(w, "\nSWITCH\tMASTER\tEPOCH\tLEASE")
	for _, m := range info.Masters {
		lease := "held"
		if m.Expired {
			lease = "EXPIRED"
		}
		fmt.Fprintf(w, "%s\t%s\t%d\t%s\n", m.Host, m.Owner, m.Epoch, lease)
	}
	w.Flush()
}

// Command typhoon-cluster starts an emulated Typhoon cluster, optionally
// submits a demo word-count topology, and serves the central coordinator
// over TCP so typhoon-ctl can inspect and reconfigure it from another
// process. The observability endpoint (-metrics) exposes the cluster's
// metric registry in Prometheus text format, the live top table, sampled
// tuple-path traces, and net/http/pprof.
//
//	typhoon-cluster -hosts 3 -listen 127.0.0.1:7000 -demo
//	typhoon-ctl -coordinator 127.0.0.1:7000 list
//	typhoon-ctl top
//	curl http://127.0.0.1:9090/metrics
package main

import (
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"typhoon"
	"typhoon/internal/coordinator"
	"typhoon/internal/workload"
)

func main() {
	var (
		hosts      = flag.Int("hosts", 3, "number of emulated compute hosts")
		listen     = flag.String("listen", "127.0.0.1:7000", "coordinator TCP listen address")
		mode       = flag.String("mode", "typhoon", "data plane: typhoon or storm")
		demo       = flag.Bool("demo", false, "submit a demo word-count topology")
		metrics    = flag.String("metrics", "127.0.0.1:9090", "observability HTTP listen address (empty disables)")
		traceEvery = flag.Int("trace-every", 0, "sample one in N frames for tuple-path tracing (0 = default, negative disables)")
		ctls       = flag.Int("controllers", 1, "replicated SDN controller instances (typhoon mode; 1 = standalone)")
		qos        = flag.Bool("qos", false, "enable multi-tenant QoS: meters, weighted egress queues, bandwidth allocator")
		linkBps    = flag.Uint64("link-bps", 0, "QoS per-host link capacity in bytes/s (0 = allocator default)")
	)
	flag.Parse()

	names := make([]string, *hosts)
	for i := range names {
		names[i] = fmt.Sprintf("h%d", i+1)
	}
	m := typhoon.ModeTyphoon
	if *mode == "storm" {
		m = typhoon.ModeStorm
	}
	cluster, err := typhoon.NewCluster(typhoon.Config{
		Mode: m, Hosts: names, TraceEvery: *traceEvery, Controllers: *ctls,
		QoS: typhoon.QoSConfig{Enable: *qos, LinkCapacityBps: *linkBps},
	})
	if err != nil {
		log.Fatal(err)
	}
	defer cluster.Stop()

	srv, err := coordinator.Serve(*listen, cluster.Store)
	if err != nil {
		log.Fatal(err)
	}
	defer srv.Close()
	if *ctls > 1 {
		fmt.Printf("cluster up: %d hosts (%s mode, %d replicated controllers), coordinator at %s\n",
			*hosts, *mode, *ctls, srv.Addr())
	} else {
		fmt.Printf("cluster up: %d hosts (%s mode), coordinator at %s\n", *hosts, *mode, srv.Addr())
	}

	if cluster.Controller != nil {
		// The live debugger doubles as the consumer of sampled tuple-path
		// traces alongside its packet-mirroring taps.
		dbg := typhoon.NewLiveDebugger()
		dbg.AttachTraceLog(cluster.Obs.Traces)
		cluster.Controller.AddApp(dbg)
	}
	if *metrics != "" {
		obsSrv := &http.Server{Addr: *metrics, Handler: cluster.ObserveHandler()}
		go func() {
			if err := obsSrv.ListenAndServe(); err != nil && err != http.ErrServerClosed {
				log.Printf("observability endpoint: %v", err)
			}
		}()
		defer obsSrv.Close()
		fmt.Printf("observability at http://%s/metrics (top: /api/top, traces: /api/traces, pprof: /debug/pprof/)\n", *metrics)
	}

	stats := workload.NewStats(time.Second)
	cluster.Env.Set(workload.EnvStats, stats)
	cluster.Env.Set(workload.EnvConfig, workload.NewConfig())

	if *demo {
		b := typhoon.NewTopology("wordcount", 1)
		if *qos {
			b.QoS(typhoon.QoSGuaranteed, 0)
		}
		b.Source("input", workload.LogicSentenceSource, 1)
		b.Node("split", workload.LogicSplitter, 2).ShuffleFrom("input")
		b.Node("count", workload.LogicCounter, 2).FieldsFrom("split", 0).Stateful()
		topo, err := b.Build()
		if err != nil {
			log.Fatal(err)
		}
		if err := cluster.Submit(topo, 15*time.Second); err != nil {
			log.Fatal(err)
		}
		fmt.Println("demo topology 'wordcount' running")
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
	ticker := time.NewTicker(5 * time.Second)
	defer ticker.Stop()
	for {
		select {
		case <-sig:
			fmt.Println("shutting down")
			return
		case <-ticker.C:
			if *demo {
				var n uint64
				for _, w := range cluster.WorkersOf("wordcount", "count") {
					n += w.StatsSnapshot().Processed
				}
				fmt.Printf("wordcount: %d words counted\n", n)
			}
		}
	}
}

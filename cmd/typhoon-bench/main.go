// Command typhoon-bench regenerates the paper's evaluation tables and
// figures (§6) on the emulated cluster and prints each result's rows or
// series.
//
// Usage:
//
//	typhoon-bench -list
//	typhoon-bench -run fig8a,fig9
//	typhoon-bench -run all -warmup 2s -measure 5s
//
// Longer windows give smoother numbers; the defaults keep a full sweep
// under a few minutes.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"typhoon/internal/experiments"
)

func main() {
	var (
		list    = flag.Bool("list", false, "list experiment IDs and exit")
		run     = flag.String("run", "all", "comma-separated experiment IDs, or 'all'")
		warmup  = flag.Duration("warmup", time.Second, "discarded warmup before each measurement")
		measure = flag.Duration("measure", 2*time.Second, "measurement window")
	)
	flag.Parse()

	if *list {
		for _, e := range experiments.All() {
			fmt.Println(e.ID)
		}
		return
	}
	params := experiments.Params{Warmup: *warmup, Measure: *measure}

	var entries []experiments.Entry
	if *run == "all" {
		entries = experiments.All()
	} else {
		for _, id := range strings.Split(*run, ",") {
			id = strings.TrimSpace(id)
			e := experiments.ByID(id)
			if e == nil {
				fmt.Fprintf(os.Stderr, "unknown experiment %q (use -list)\n", id)
				os.Exit(2)
			}
			entries = append(entries, *e)
		}
	}
	failed := false
	for _, e := range entries {
		start := time.Now()
		res := e.Run(params)
		res.Print(os.Stdout)
		fmt.Printf("  (%.1fs)\n\n", time.Since(start).Seconds())
		if res.Err != nil {
			failed = true
		}
	}
	if failed {
		os.Exit(1)
	}
}
